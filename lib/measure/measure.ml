(* The measurement seam. Two invariants carry the whole design:

   1. No-fault requests consume exactly the tuning-RNG values the legacy
      inline path (Gpu_model.measure_ms / finish_measure_ms in candidate
      order) would — one gaussian per finite base, none otherwise — so the
      Direct default is bitwise-identical to pre-measurer tuner output.

   2. Chaos fault decisions never touch the tuning RNG. Each (digest,
      attempt) pair addresses a private SplitMix64 substream derived from
      the chaos seed and an FNV-1a hash of the digest, so the fault
      schedule is a pure function of the configuration and the digests —
      independent of request order, batching and parallelism — and a
      resumed run replays the exact faults of the uninterrupted one. *)

type request = {
  digest : string;
  device : Device.t;
  program : Loop_ir.t;
  env : Eval.env;
}

type outcome = Ok of float | Timeout | Crash of string | Invalid

let latency_ms = function Ok l -> l | Timeout | Crash _ | Invalid -> Float.infinity

let outcome_kind = function
  | Ok _ -> "ok"
  | Timeout -> "timeout"
  | Crash _ -> "crash"
  | Invalid -> "invalid"

type classification = First_try | Flaky | Deterministic | Exhausted

let classification_name = function
  | First_try -> "first-try"
  | Flaky -> "flaky"
  | Deterministic -> "deterministic"
  | Exhausted -> "exhausted"

type result = {
  outcome : outcome;
  attempts : int;
  classification : classification;
  from_cache : bool;
}

(* --- configuration ---------------------------------------------------------- *)

type chaos = {
  chaos_seed : int;
  timeout_rate : float;
  crash_rate : float;
  hang_rate : float;
  flaky_rate : float;
  flaky_magnitude : float;
}

let chaos_with_rate ?(seed = 0) rate =
  let quarter = rate /. 4.0 in
  { chaos_seed = seed; timeout_rate = quarter; crash_rate = quarter;
    hang_rate = quarter; flaky_rate = quarter; flaky_magnitude = 0.25 }

type config = {
  timeout_s : float;
  max_attempts : int;
  backoff_s : float;
  chaos : chaos option;
}

let default = { timeout_s = 5.0; max_attempts = 3; backoff_s = 0.25; chaos = None }

let validate c =
  let pos_finite v = Float.is_finite v && v > 0.0 in
  let nonneg_finite v = Float.is_finite v && v >= 0.0 in
  let rate v = Float.is_finite v && v >= 0.0 && v <= 1.0 in
  let checks =
    [ (pos_finite c.timeout_s, "measure timeout_s must be finite and > 0");
      (c.max_attempts >= 1, "measure max_attempts must be >= 1");
      (nonneg_finite c.backoff_s, "measure backoff_s must be finite and >= 0") ]
    @ (match c.chaos with
      | None -> []
      | Some ch ->
        [ (rate ch.timeout_rate, "chaos timeout_rate must be in [0, 1]");
          (rate ch.crash_rate, "chaos crash_rate must be in [0, 1]");
          (rate ch.hang_rate, "chaos hang_rate must be in [0, 1]");
          (rate ch.flaky_rate, "chaos flaky_rate must be in [0, 1]");
          ( rate (ch.timeout_rate +. ch.crash_rate +. ch.hang_rate +. ch.flaky_rate),
            "chaos fault rates must sum to <= 1" );
          ( Float.is_finite ch.flaky_magnitude
            && ch.flaky_magnitude >= 0.0
            && ch.flaky_magnitude < 1.0,
            "chaos flaky_magnitude must be in [0, 1)" ) ])
  in
  match List.find_opt (fun (ok, _) -> not ok) checks with
  | Some (_, msg) -> Stdlib.Error msg
  | None -> Stdlib.Ok ()

(* Codec: floats as IEEE-754 bit strings, like every other persistent
   float in the system (Store.Bits), so a decoded config is bit-identical
   to the encoded one and can participate in checkpoint identity. *)

let config_to_json c =
  let f v = Json.Str (Store.Bits.of_float v) in
  let i v = Json.Num (float_of_int v) in
  let chaos =
    match c.chaos with
    | None -> Json.Null
    | Some ch ->
      Json.Obj
        [ ("seed", i ch.chaos_seed); ("timeout_rate", f ch.timeout_rate);
          ("crash_rate", f ch.crash_rate); ("hang_rate", f ch.hang_rate);
          ("flaky_rate", f ch.flaky_rate); ("flaky_magnitude", f ch.flaky_magnitude) ]
  in
  Json.Obj
    [ ("timeout_s", f c.timeout_s); ("max_attempts", i c.max_attempts);
      ("backoff_s", f c.backoff_s); ("chaos", chaos) ]

exception Codec of string

let config_of_json j =
  let field k = match Json.find j k with Some v -> v | None -> raise (Codec k) in
  let int_field j k =
    match Option.bind (Json.find j k) Json.as_int with
    | Some v -> v
    | None -> raise (Codec k)
  in
  let bits_field j k =
    match Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_float with
    | Some v -> v
    | None -> raise (Codec k)
  in
  try
    let chaos =
      match field "chaos" with
      | Json.Null -> None
      | cj ->
        Some
          { chaos_seed = int_field cj "seed";
            timeout_rate = bits_field cj "timeout_rate";
            crash_rate = bits_field cj "crash_rate";
            hang_rate = bits_field cj "hang_rate";
            flaky_rate = bits_field cj "flaky_rate";
            flaky_magnitude = bits_field cj "flaky_magnitude" }
    in
    Stdlib.Ok
      { timeout_s = bits_field j "timeout_s";
        max_attempts = int_field j "max_attempts";
        backoff_s = bits_field j "backoff_s";
        chaos }
  with Codec k ->
    Stdlib.Error (Printf.sprintf "measure config: missing or malformed field %S" k)

let config_equal a b = config_to_json a = config_to_json b

(* --- the measurer ----------------------------------------------------------- *)

type backend = Direct | Pool of Runtime.t

type t = {
  backend : backend;
  cfg : config;
  cache : (string, result) Runtime.Lru.t option;  (* digest -> final outcome *)
  c_requests : Telemetry.Counter.t;
  c_attempts : Telemetry.Counter.t;
  c_retries : Telemetry.Counter.t;
  c_ok : Telemetry.Counter.t;
  c_timeouts : Telemetry.Counter.t;
  c_crashes : Telemetry.Counter.t;
  c_invalid : Telemetry.Counter.t;
  c_flaky : Telemetry.Counter.t;
  c_recovered : Telemetry.Counter.t;
  c_deterministic : Telemetry.Counter.t;
  c_exhausted : Telemetry.Counter.t;
  c_cache_hits : Telemetry.Counter.t;
  h_latency : Telemetry.Histogram.t;
  h_attempts : Telemetry.Histogram.t;
}

let create ?(telemetry = Telemetry.global) ?(cache_capacity = 4096) backend cfg =
  { backend;
    cfg;
    cache =
      (if cache_capacity > 0 then
         Some (Runtime.Lru.create ~capacity:cache_capacity ())
       else None);
    c_requests = Telemetry.counter telemetry "measure.requests";
    c_attempts = Telemetry.counter telemetry "measure.attempts";
    c_retries = Telemetry.counter telemetry "measure.retries";
    c_ok = Telemetry.counter telemetry "measure.ok";
    c_timeouts = Telemetry.counter telemetry "measure.timeouts";
    c_crashes = Telemetry.counter telemetry "measure.crashes";
    c_invalid = Telemetry.counter telemetry "measure.invalid";
    c_flaky = Telemetry.counter telemetry "measure.flaky_injected";
    c_recovered = Telemetry.counter telemetry "measure.recovered";
    c_deterministic = Telemetry.counter telemetry "measure.deterministic";
    c_exhausted = Telemetry.counter telemetry "measure.exhausted";
    c_cache_hits = Telemetry.counter telemetry "measure.cache_hits";
    h_latency = Telemetry.histogram telemetry "measure.latency_ms";
    h_attempts = Telemetry.histogram telemetry "measure.attempts_per_request" }

let config t = t.cfg
let backend_name t = match t.backend with Direct -> "direct" | Pool _ -> "pool"

type batch_cost = { measured_attempts : int; extra_s : float }

let zero_cost = { measured_attempts = 0; extra_s = 0.0 }

(* --- fault injection -------------------------------------------------------- *)

(* 64-bit FNV-1a of the digest: a stable, platform-independent address of
   the request inside the chaos RNG's substream space. *)
let fnv64 s =
  let prime = 0x100000001b3L in
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun ch -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code ch))) prime)
    s;
  !h

type fault = No_fault | F_timeout | F_crash | F_hang | F_flaky of float

(* One decision per (digest, attempt), independent of everything else. *)
let fault_for ch ~digest ~attempt =
  let idx = Int64.to_int (Int64.logand (fnv64 digest) 0x3FFFFFFFFFFFFFFFL) in
  let r = Rng.substream (Rng.substream (Rng.create ch.chaos_seed) idx) attempt in
  let u = Rng.uniform r in
  let t1 = ch.timeout_rate in
  let t2 = t1 +. ch.crash_rate in
  let t3 = t2 +. ch.hang_rate in
  let t4 = t3 +. ch.flaky_rate in
  if u < t1 then F_timeout
  else if u < t2 then F_crash
  else if u < t3 then F_hang
  else if u < t4 then
    F_flaky (1.0 +. (ch.flaky_magnitude *. ((2.0 *. Rng.uniform r) -. 1.0)))
  else No_fault

let crash_message digest =
  Printf.sprintf "injected device fault %016Lx" (fnv64 digest)

(* Two consecutive failures that look the same are a deterministic
   failure: retrying cannot help. Crash messages are keyed on the digest
   (not the attempt), so a genuinely broken candidate fails fast. *)
let same_failure a b =
  match (a, b) with
  | Timeout, Timeout -> true
  | Invalid, Invalid -> true
  | Crash m1, Crash m2 -> m1 = m2
  | _ -> false

(* --- the retry loop --------------------------------------------------------- *)

(* Measure one request given its (deterministic) noiseless base latency,
   accumulating its simulated-time cost into [meas]/[extra] (out-refs so
   the no-fault fast path returns only the result, with no tuple or boxed
   float per request). The base is computed once: the simulator is
   deterministic, so a retry re-runs only the parts that can change
   (noise, faults).

   RNG discipline: only clean and flaky attempts call finish_measure_ms
   (one gaussian when the base is finite; none — plus a sim.invalid count
   — when it is not, exactly like the legacy path). Timed-out and crashed
   attempts consume nothing from [rng]. *)
let run_one t rng ~base ~meas ~extra digest =
  let cfg = t.cfg in
  let rec attempt_loop attempt prev =
    Telemetry.Counter.incr t.c_attempts;
    if attempt > 1 then Telemetry.Counter.incr t.c_retries;
    let fault =
      match cfg.chaos with
      | Some ch when Float.is_finite base -> fault_for ch ~digest ~attempt
      | _ -> No_fault
    in
    match fault with
    | No_fault | F_flaky _ -> (
      let lat = Gpu_model.finish_measure_ms rng base in
      if Float.is_finite lat then begin
        let lat =
          match fault with
          | F_flaky f ->
            Telemetry.Counter.incr t.c_flaky;
            lat *. f
          | _ -> lat
        in
        Telemetry.Counter.incr t.c_ok;
        Telemetry.Histogram.observe t.h_latency lat;
        let classification =
          if attempt = 1 then First_try
          else begin
            Telemetry.Counter.incr t.c_recovered;
            Flaky
          end
        in
        incr meas;
        { outcome = Ok lat; attempts = attempt; classification; from_cache = false }
      end
      else begin
        (* Invalid schedule: the failure is a property of the candidate,
           never retried (also keeps the no-chaos path's RNG and clock
           identical to legacy regardless of max_attempts). *)
        Telemetry.Counter.incr t.c_invalid;
        Telemetry.Counter.incr t.c_deterministic;
        incr meas;
        { outcome = Invalid; attempts = attempt; classification = Deterministic;
          from_cache = false }
      end)
    | F_timeout | F_hang ->
      (* A hang runs into the deadline; both cost the full timeout. *)
      Telemetry.Counter.incr t.c_timeouts;
      extra := !extra +. cfg.timeout_s;
      settle_failure attempt prev Timeout
    | F_crash ->
      (* The candidate compiled and started running before dying: one
         measurement's worth of simulated time was spent. *)
      Telemetry.Counter.incr t.c_crashes;
      incr meas;
      settle_failure attempt prev (Crash (crash_message digest))
  and settle_failure attempt prev outcome =
    let deterministic =
      match prev with Some p -> same_failure p outcome | None -> false
    in
    if deterministic then begin
      Telemetry.Counter.incr t.c_deterministic;
      { outcome; attempts = attempt; classification = Deterministic;
        from_cache = false }
    end
    else if attempt >= cfg.max_attempts then begin
      Telemetry.Counter.incr t.c_exhausted;
      { outcome; attempts = attempt; classification = Exhausted; from_cache = false }
    end
    else begin
      let backoff = cfg.backoff_s *. (2.0 ** float_of_int (attempt - 1)) in
      extra := !extra +. backoff;
      attempt_loop (attempt + 1) (Some outcome)
    end
  in
  attempt_loop 1 None

(* --- batches ---------------------------------------------------------------- *)

let dummy_result =
  { outcome = Invalid; attempts = 0; classification = Deterministic; from_cache = false }

let measure_batch t ~rng ?with_base requests =
  let n = Array.length requests in
  Telemetry.Counter.incr ~by:n t.c_requests;
  let results = Array.make n dummy_result in
  let meas = ref 0 in
  let extra = ref 0.0 in
  (* Noise, faults and retries happen here, in request order on the
     caller's RNG stream, whichever backend computed the base. Every index
     is either a cache hit or joined, so the placeholder never escapes. *)
  let join i req base =
    let r = run_one t rng ~base ~meas ~extra req.digest in
    Telemetry.Histogram.observe t.h_attempts (float_of_int r.attempts);
    (match t.cache with Some c -> Runtime.Lru.add c req.digest r | None -> ());
    results.(i) <- r
  in
  let cache_hit req =
    match t.cache with
    | None -> None
    | Some c -> Runtime.Lru.find_opt c req.digest
  in
  (match t.backend with
  | Direct ->
    (* One fused pass, the exact shape of the legacy inline loop (the
       base is RNG-free, so fusing base and noise per request draws the
       same stream as the staged Pool join below). Kept allocation-light:
       this path must cost ~nothing over calling Gpu_model.measure_ms. *)
    for i = 0 to n - 1 do
      let req = requests.(i) in
      match cache_hit req with
      | Some r ->
        Telemetry.Counter.incr t.c_cache_hits;
        results.(i) <- { r with from_cache = true }
      | None ->
        let base = Gpu_model.measure_base_ms req.device req.program req.env in
        (match with_base with
        | Some f when Float.is_finite base -> f i base
        | _ -> ());
        join i req base
    done
  | Pool rt ->
    (* Outcome-cache hits are settled first and consume nothing; the
       noiseless bases of the misses — the expensive, RNG-free half —
       fan out across the domain pool, memoised under the digest. *)
    let misses = ref [] in
    Array.iteri
      (fun i req ->
        match cache_hit req with
        | Some r ->
          Telemetry.Counter.incr t.c_cache_hits;
          results.(i) <- { r with from_cache = true }
        | None -> misses := (i, req) :: !misses)
      requests;
    let fresh = Array.of_list (List.rev !misses) in
    let base_of (i, req) =
      let base =
        Gpu_model.measure_base_ms ~cache:(Runtime.sim_cache rt) ~key:req.digest
          req.device req.program req.env
      in
      (match with_base with
      | Some f when Float.is_finite base -> f i base
      | _ -> ());
      base
    in
    let bases = Runtime.parallel_map rt base_of fresh in
    Array.iteri (fun j (i, req) -> join i req bases.(j)) fresh);
  (results, { measured_attempts = !meas; extra_s = !extra })
