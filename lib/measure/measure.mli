(** Pluggable measurement subsystem: the seam between {e deciding what to
    measure} and {e obtaining a measurement}.

    On real hardware, candidate measurements crash, hang, time out and
    return flaky numbers; AutoTVM's builder/runner split and RPC measurer
    exist to absorb exactly those failure modes. A {!t} (a "measurer")
    owns the measure step end-to-end so every future backend — remote
    workers, real devices — plugs in behind one typed interface, and so
    the failure handling (deadline, retry, classification, caching) can be
    tested today against the simulator.

    A {!request} travels through a {!backend}:

    - {!Direct} — today's in-process simulator path and the default;
      bitwise-identical to calling {!Gpu_model.measure_ms} inline;
    - {!Pool} — fans a batch's noiseless base measurements across the
      {!Runtime} domain pool (memoised in the runtime's simulator cache),
      applying measurement noise at the join in request order, so results
      are bit-identical to {!Direct} at any domain count. The configured
      [timeout_s] is the per-request deadline: an attempt that exceeds it
      (today only via injected hangs; on real hardware, via a wall-clock
      watchdog) is cut off and reported as {!Timeout}.

    Either backend can be wrapped in {e chaos}: a deterministic
    fault-injecting layer keyed on the request digest and a seeded RNG
    substream (see {!chaos}) that injects timeouts, crashes, hangs
    (infinite latencies, cut off at the deadline) and flaky multiplicative
    noise at configured rates.

    The outcome of a request is typed ({!outcome}), produced under a
    retry/backoff policy — at most [max_attempts] tries, exponential
    backoff in {e simulated} time, and flaky-vs-deterministic
    classification: a request that fails identically twice in a row is
    classified {!Deterministic} and not retried again — with a
    digest-keyed outcome cache layered on top.

    Determinism contract: with [chaos = None] (any backend) a request
    consumes exactly the tuning-RNG values the legacy inline path would,
    so tuner results are bit-identical to pre-measurer code. Fault
    decisions never touch the tuning RNG — they are drawn from a private
    substream addressed by [(digest, attempt)] — so a chaos run is a pure
    function of [(chaos seed, rates, request digests)], independent of
    request order, batch boundaries and parallelism. *)

(** {1 Requests and outcomes} *)

type request = {
  digest : string;
      (** canonical identity of the candidate measurement: must cover
          device, workload and schedule assignment (the tuner uses
          [device|workload|schedule-key]). Keys the outcome cache, the
          pool's simulator memo and every chaos fault decision. *)
  device : Device.t;
  program : Loop_ir.t;
  env : Eval.env;  (** schedule-variable assignment *)
}

type outcome =
  | Ok of float  (** measured latency in ms *)
  | Timeout  (** the attempt exceeded the per-request deadline *)
  | Crash of string  (** the worker died; the message is the diagnostic *)
  | Invalid  (** the schedule itself is invalid (infinite base latency) *)

val latency_ms : outcome -> float
(** [Ok l -> l]; every failure is [infinity] (the tuner's dedup tables
    store failures at infinite latency, like invalid schedules today). *)

val outcome_kind : outcome -> string
(** Stable identifier: ["ok"], ["timeout"], ["crash"], ["invalid"]. *)

(** How a request's final outcome was reached. *)
type classification =
  | First_try  (** succeeded on attempt 1 *)
  | Flaky  (** failed at least once, then succeeded on a retry *)
  | Deterministic
      (** failed identically twice in a row (or the schedule is
          {!Invalid}): retrying cannot help, so the measurer stops early *)
  | Exhausted  (** ran out of attempts with non-identical failures *)

val classification_name : classification -> string

type result = {
  outcome : outcome;
  attempts : int;  (** attempts actually made (>= 1; cached hits keep the
                       original count) *)
  classification : classification;
  from_cache : bool;  (** served from the outcome cache: no simulator or
                          RNG activity *)
}

(** {1 Configuration} *)

(** Deterministic fault injection. Each attempt of each request draws one
    decision from [Rng.substream (Rng.substream (create seed) hash(digest))
    attempt] and partitions it by the four rates (their sum must be
    <= 1): timeout, crash, hang and flaky multiplicative noise (a factor
    uniform in [1 ± flaky_magnitude]). Keying on the digest rather than
    on arrival order is what keeps parallel and resumed runs
    deterministic: the fault schedule of a candidate does not depend on
    when, where or with which batch it is measured. *)
type chaos = {
  chaos_seed : int;
  timeout_rate : float;
  crash_rate : float;
  hang_rate : float;  (** hangs run into the deadline: reported {!Timeout} *)
  flaky_rate : float;
  flaky_magnitude : float;  (** relative magnitude of flaky noise, in [0, 1) *)
}

val chaos_with_rate : ?seed:int -> float -> chaos
(** [chaos_with_rate r] splits a total fault rate [r] (in [0, 1]) evenly
    across the four fault classes, with [flaky_magnitude = 0.25] and
    [seed] defaulting to 0 — the CLI's [--chaos r]. *)

type config = {
  timeout_s : float;
      (** per-request deadline in simulated seconds; a timed-out attempt
          costs this much simulated time *)
  max_attempts : int;  (** >= 1; total tries including the first *)
  backoff_s : float;
      (** base of the exponential backoff: retry [k] (k >= 1) waits
          [backoff_s * 2^(k-1)] simulated seconds *)
  chaos : chaos option;  (** [None] = no fault injection (the default) *)
}

val default : config
(** [timeout_s = 5.0], [max_attempts = 3], [backoff_s = 0.25],
    [chaos = None]. With no faults injected the policy fields are inert:
    every request succeeds on attempt 1 at zero extra simulated cost. *)

val validate : config -> (unit, string) Stdlib.result
(** Range checks ([Error] carries the first violated constraint's
    message): positive finite timeout, [max_attempts >= 1], non-negative
    finite backoff, rates in [0, 1] summing to <= 1,
    [flaky_magnitude] in [0, 1). *)

val config_to_json : config -> Json.t
val config_of_json : Json.t -> (config, string) Stdlib.result
(** Bit-exact codec (floats as IEEE-754 bit strings) shared — via
    [Tuning_config]'s run codec — by [run.json], the service wire
    protocol and checkpoint identity. *)

val config_equal : config -> config -> bool
(** Structural equality with floats compared by bits (so configs that
    serialise identically compare equal). *)

(** {1 The measurer} *)

type backend = Direct | Pool of Runtime.t

type t

val create : ?telemetry:Telemetry.t -> ?cache_capacity:int -> backend -> config -> t
(** [cache_capacity] bounds the digest-keyed outcome cache (default
    4096; [0] disables it). [telemetry] receives the [measure.*] metrics
    (default {!Telemetry.global}). *)

val config : t -> config
val backend_name : t -> string  (** ["direct"] or ["pool"] *)

(** Simulated-time cost of a batch, for the caller's clock accounting:
    [measured_attempts] attempts actually ran the candidate to completion
    (each costs one [measure_seconds]); [extra_s] adds the deadline cost
    of timed-out attempts and the retry backoffs. With no faults this is
    exactly [(batch size, 0.0)], preserving the legacy clock arithmetic
    bit-for-bit. *)
type batch_cost = { measured_attempts : int; extra_s : float }

val zero_cost : batch_cost

val measure_batch :
  t ->
  rng:Rng.t ->
  ?with_base:(int -> float -> unit) ->
  request array ->
  result array * batch_cost
(** Measure a batch of (caller-deduplicated) requests. Results come back
    in request order; measurement noise is drawn from [rng] in request
    order regardless of backend, preserving the tuning RNG stream.

    [with_base i base] is invoked once per request whose noiseless base
    latency is finite, {e where the base is computed} — on a pool domain
    for {!Pool}, inline for {!Direct} — so callers can piggyback pure
    per-candidate work (the tuner extracts feature vectors there) on the
    parallel phase. It is not called for cached or invalid requests.

    Telemetry: [measure.requests], [measure.attempts] (and per-attempt
    outcomes [measure.ok] / [measure.timeouts] / [measure.crashes] /
    [measure.invalid], which sum to [measure.attempts]),
    [measure.retries], [measure.flaky_injected], [measure.recovered],
    [measure.deterministic], [measure.exhausted], [measure.cache_hits],
    plus histograms [measure.latency_ms] (successful outcomes) and
    [measure.attempts_per_request]. *)
