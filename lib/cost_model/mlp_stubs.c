/* Batched MLP kernels, vectorised across candidate lanes.
 *
 * Layout contract (see mlp.ml): activation and delta planes are
 * feature-major with row stride equal to the current batch —
 * plane[j * batch + lane] — so the lanes of one neuron form a contiguous
 * strip. Each lane's operation sequence is exactly the scalar OCaml
 * kernel's: bias first, then inputs in ascending order (one multiply and
 * one add per input, never contracted into an FMA), ReLU as the same
 * compare, and reverse-sweep contributions in ascending output order with
 * zero-delta outputs leaving the accumulator untouched. Vectorisation
 * only packs independent lanes into one register, so every lane's result
 * is bit-identical to the OCaml path. The build flags (dune: -O3
 * -ffp-contract=off -fno-trapping-math) keep IEEE semantics exact while
 * letting GCC if-convert the zero-delta guard into a lane blend.
 *
 * These functions allocate nothing and never call back into the runtime,
 * so they are declared [@@noalloc] on the OCaml side.
 */

#include <caml/mlvalues.h>

/* x86-64 baseline is SSE2 (2 lanes per vector); AVX2 and AVX-512 widen
 * that to 4 and 8. target_clones compiles each kernel once per ISA and
 * picks the widest one the running CPU supports at load time (glibc
 * ifunc), so the same binary is correct everywhere. Lane width never
 * changes per-lane IEEE results. */
#if defined(__GNUC__) && !defined(__clang__) && defined(__x86_64__) && defined(__gnu_linux__)
#define LANE_CLONES __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define LANE_CLONES
#endif

#if defined(__GNUC__)
#define RESTRICT __restrict__
#else
#define RESTRICT
#endif

/* One dense layer forward: out[o*batch+l] = relu?(bias_o + sum_i w_oi * x[i*batch+l]).
 * Blocked over two outputs (shared activation loads) and four inputs
 * (fewer accumulator round-trips); each (lane, output) accumulator still
 * sums bias first, then inputs in ascending order one add at a time, so
 * the per-lane addition sequence is the scalar one. */
LANE_CLONES static void fwd_two(const double *RESTRICT p, long off, long o0, long n_in,
                    long n_out, long batch, const double *RESTRICT x,
                    double *RESTRICT out, int relu)
{
  const long bias = off + n_in * n_out;
  const double b0 = p[bias + o0], b1 = p[bias + o0 + 1];
  const double *RESTRICT w0 = p + off + o0 * n_in;
  const double *RESTRICT w1 = w0 + n_in;
  double *RESTRICT acc0 = out + o0 * batch;
  double *RESTRICT acc1 = acc0 + batch;
  for (long l = 0; l < batch; l++) acc0[l] = b0;
  for (long l = 0; l < batch; l++) acc1[l] = b1;
  long i = 0;
  for (; i + 3 < n_in; i += 4) {
    const double w00 = w0[i], w01 = w0[i + 1], w02 = w0[i + 2], w03 = w0[i + 3];
    const double w10 = w1[i], w11 = w1[i + 1], w12 = w1[i + 2], w13 = w1[i + 3];
    const double *RESTRICT x0 = x + i * batch;
    const double *RESTRICT x1 = x0 + batch;
    const double *RESTRICT x2 = x1 + batch;
    const double *RESTRICT x3 = x2 + batch;
    for (long l = 0; l < batch; l++) {
      const double a0 = x0[l], a1 = x1[l], a2 = x2[l], a3 = x3[l];
      double v0 = acc0[l];
      v0 = v0 + w00 * a0;
      v0 = v0 + w01 * a1;
      v0 = v0 + w02 * a2;
      v0 = v0 + w03 * a3;
      acc0[l] = v0;
      double v1 = acc1[l];
      v1 = v1 + w10 * a0;
      v1 = v1 + w11 * a1;
      v1 = v1 + w12 * a2;
      v1 = v1 + w13 * a3;
      acc1[l] = v1;
    }
  }
  for (; i < n_in; i++) {
    const double wi0 = w0[i], wi1 = w1[i];
    const double *RESTRICT xi = x + i * batch;
    for (long l = 0; l < batch; l++) {
      const double a = xi[l];
      acc0[l] = acc0[l] + wi0 * a;
      acc1[l] = acc1[l] + wi1 * a;
    }
  }
  if (relu) {
    for (long l = 0; l < batch; l++) acc0[l] = (0.0 >= acc0[l]) ? 0.0 : acc0[l];
    for (long l = 0; l < batch; l++) acc1[l] = (0.0 >= acc1[l]) ? 0.0 : acc1[l];
  }
}

LANE_CLONES static void fwd_one(const double *RESTRICT p, long off, long o, long n_in,
                    long n_out, long batch, const double *RESTRICT x,
                    double *RESTRICT out, int relu)
{
  const double b = p[off + n_in * n_out + o];
  const double *RESTRICT w = p + off + o * n_in;
  double *RESTRICT acc = out + o * batch;
  for (long l = 0; l < batch; l++) acc[l] = b;
  long i = 0;
  for (; i + 3 < n_in; i += 4) {
    const double w0 = w[i], w1 = w[i + 1], w2 = w[i + 2], w3 = w[i + 3];
    const double *RESTRICT x0 = x + i * batch;
    const double *RESTRICT x1 = x0 + batch;
    const double *RESTRICT x2 = x1 + batch;
    const double *RESTRICT x3 = x2 + batch;
    for (long l = 0; l < batch; l++) {
      double v = acc[l];
      v = v + w0 * x0[l];
      v = v + w1 * x1[l];
      v = v + w2 * x2[l];
      v = v + w3 * x3[l];
      acc[l] = v;
    }
  }
  for (; i < n_in; i++) {
    const double wi = w[i];
    const double *RESTRICT xi = x + i * batch;
    for (long l = 0; l < batch; l++) acc[l] = acc[l] + wi * xi[l];
  }
  if (relu)
    for (long l = 0; l < batch; l++) acc[l] = (0.0 >= acc[l]) ? 0.0 : acc[l];
}

LANE_CLONES static void fwd_layer(const double *RESTRICT p, long off, long n_in, long n_out,
                      long batch, const double *RESTRICT x, double *RESTRICT out,
                      int relu)
{
  long o = 0;
  for (; o + 1 < n_out; o += 2) fwd_two(p, off, o, n_in, n_out, batch, x, out, relu);
  for (; o < n_out; o++) fwd_one(p, off, o, n_in, n_out, batch, x, out, relu);
}

/* One dense layer of the reverse sweep. [cur] (the incoming deltas) is
 * masked in place by the ReLU activation pattern; a lane whose delta is
 * zero must leave its d_in cells untouched (adding 0.0 could change a
 * -0.0 cell or propagate a non-finite weight), hence the blend. */
LANE_CLONES static int bwd_mask(long o, long n_out, long batch, double *RESTRICT cur,
                    const double *RESTRICT nxt, int relu)
{
  double *RESTRICT d = cur + o * batch;
  int any = 0;
  if (relu) {
    const double *RESTRICT a = nxt + o * batch;
    for (long l = 0; l < batch; l++) {
      const double dv = (a[l] <= 0.0) ? 0.0 : d[l];
      d[l] = dv;
      any |= (dv != 0.0);
    }
  } else {
    for (long l = 0; l < batch; l++) any |= (d[l] != 0.0);
  }
  (void)n_out;
  return any;
}

LANE_CLONES static void bwd_layer(const double *RESTRICT p, long off, long n_in, long n_out,
                      long batch, double *RESTRICT cur, const double *RESTRICT nxt,
                      double *RESTRICT d_in, int relu)
{
  for (long j = 0; j < batch * n_in; j++) d_in[j] = 0.0;
  long o = 0;
  /* Pairs of outputs share each d_in round-trip; a cell's contributions
   * still land in ascending output order (two sequential blends). */
  for (; o + 1 < n_out; o += 2) {
    const int any0 = bwd_mask(o, n_out, batch, cur, nxt, relu);
    const int any1 = bwd_mask(o + 1, n_out, batch, cur, nxt, relu);
    if (!any0 && !any1) continue;
    const double *RESTRICT d0 = cur + o * batch;
    const double *RESTRICT d1 = d0 + batch;
    const double *RESTRICT w0 = p + off + o * n_in;
    const double *RESTRICT w1 = w0 + n_in;
    for (long i = 0; i < n_in; i++) {
      const double wi0 = w0[i], wi1 = w1[i];
      double *RESTRICT di = d_in + i * batch;
      for (long l = 0; l < batch; l++) {
        const double dv0 = d0[l], dv1 = d1[l];
        double v = di[l];
        const double n0 = v + dv0 * wi0;
        v = (dv0 != 0.0) ? n0 : v;
        const double n1 = v + dv1 * wi1;
        v = (dv1 != 0.0) ? n1 : v;
        di[l] = v;
      }
    }
  }
  for (; o < n_out; o++) {
    if (!bwd_mask(o, n_out, batch, cur, nxt, relu)) continue;
    const double *RESTRICT d = cur + o * batch;
    const double *RESTRICT w = p + off + o * n_in;
    for (long i = 0; i < n_in; i++) {
      const double wi = w[i];
      double *RESTRICT di = d_in + i * batch;
      for (long l = 0; l < batch; l++) {
        const double dv = d[l];
        const double v = di[l];
        const double nv = v + dv * wi;
        di[l] = (dv != 0.0) ? nv : v;
      }
    }
  }
}

/* value layout: a float array is a pointer to its unboxed doubles; an int
 * array stores tagged immediates read with Long_val. */

CAMLprim value felix_mlp_forward_batch(value vp, value vsizes, value voffs,
                                       value vacts, value vbatch)
{
  const double *p = (const double *)vp;
  const long batch = Long_val(vbatch);
  const long nl = (long)Wosize_val(vsizes) - 1;
  for (long l = 0; l < nl; l++) {
    fwd_layer(p, Long_val(Field(voffs, l)), Long_val(Field(vsizes, l)),
              Long_val(Field(vsizes, l + 1)), batch,
              (const double *)Field(vacts, l), (double *)Field(vacts, l + 1),
              l < nl - 1);
  }
  return Val_unit;
}

CAMLprim value felix_mlp_forward_backward_batch(value vp, value vsizes, value voffs,
                                                value vacts, value vdelta, value vbatch)
{
  const double *p = (const double *)vp;
  const long batch = Long_val(vbatch);
  const long nl = (long)Wosize_val(vsizes) - 1;
  for (long l = 0; l < nl; l++) {
    fwd_layer(p, Long_val(Field(voffs, l)), Long_val(Field(vsizes, l)),
              Long_val(Field(vsizes, l + 1)), batch,
              (const double *)Field(vacts, l), (double *)Field(vacts, l + 1),
              l < nl - 1);
  }
  /* Seed d(score)/d(score) = 1 on output 0 of every lane, 0 elsewhere —
   * the batched image of the scalar top-delta fill. */
  {
    double *top = (double *)Field(vdelta, nl);
    const long n_top = Long_val(Field(vsizes, nl));
    for (long j = 0; j < batch * n_top; j++) top[j] = 0.0;
    for (long l = 0; l < batch; l++) top[l] = 1.0;
  }
  for (long l = nl - 1; l >= 0; l--) {
    bwd_layer(p, Long_val(Field(voffs, l)), Long_val(Field(vsizes, l)),
              Long_val(Field(vsizes, l + 1)), batch,
              (double *)Field(vdelta, l + 1), (const double *)Field(vacts, l + 1),
              (double *)Field(vdelta, l), l < nl - 1);
  }
  return Val_unit;
}

CAMLprim value felix_mlp_forward_backward_batch_byte(value *argv, int argn)
{
  (void)argn;
  return felix_mlp_forward_backward_batch(argv[0], argv[1], argv[2], argv[3],
                                          argv[4], argv[5]);
}
