type sample = { features : float array; target : float; task_key : string }
type t = { train : sample array; valid : sample array }

let collect_tasks ?(max_tasks = 500) () =
  let seen = Hashtbl.create 128 in
  let out = ref [] in
  let add_graph g =
    List.iter
      (fun (task : Partition.task) ->
        let key = Compute.workload_key task.subgraph in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          out := task.subgraph :: !out
        end)
      (Partition.partition g)
  in
  List.iter
    (fun net ->
      add_graph (Workload.graph ~batch:1 net);
      add_graph (Workload.graph ~batch:16 net))
    Workload.all_networks;
  let tasks = List.rev !out in
  List.filteri (fun i _ -> i < max_tasks) tasks

let sample_valid_point rng pack attempts =
  let bounds = Pack.bounds_log pack in
  let rec go n =
    if n = 0 then None
    else begin
      let y = Array.map (fun (lo, hi) -> Rng.range rng lo hi) bounds in
      match Pack.round_to_valid pack y with Some r -> Some r | None -> go (n - 1)
    end
  in
  go attempts

let generate rng device ?(schedules_per_task = 256) ?runtime ?cache_dir tasks =
  let out = ref [] in
  List.iter
    (fun sg ->
      let key = Compute.workload_key sg in
      let packs =
        Pack.prepare_all ?runtime ?cache_dir
          (List.map (fun s -> (sg, s)) (Sketch.generate sg))
      in
      let per_sketch = max 1 (schedules_per_task / List.length packs) in
      List.iter
        (fun pack ->
          let prog = Pack.program pack in
          let seen = Hashtbl.create per_sketch in
          for _ = 1 to per_sketch do
            match sample_valid_point rng pack 50 with
            | None -> ()
            | Some y ->
              let skey = Pack.schedule_key pack y in
              if not (Hashtbl.mem seen skey) then begin
                Hashtbl.replace seen skey ();
                let env = Pack.env_of pack y in
                let lat = Gpu_model.measure_ms ~noise:0.01 rng device prog env in
                if Float.is_finite lat && lat > 0.0 then begin
                  let features = Pack.features_at pack y in
                  out := { features; target = -.log lat; task_key = key } :: !out
                end
              end
          done)
        packs)
    tasks;
  Array.of_list !out

let split rng ?(train_frac = 0.9) samples =
  let samples = Array.copy samples in
  Rng.shuffle rng samples;
  let n_train = int_of_float (train_frac *. float_of_int (Array.length samples)) in
  { train = Array.sub samples 0 n_train;
    valid = Array.sub samples n_train (Array.length samples - n_train) }
