(** Training data for the cost model — the TenSet substitute (DESIGN.md).

    TenSet provides measured (program features, latency) pairs for ~500
    subgraph tasks. Here the tasks are the distinct fused subgraphs of the
    paper's six networks (batch sizes 1 and 16, covering all bottleneck
    operator types), the schedules are random valid samples from each
    task's sketches, and the labels come from the hardware-substitute
    simulator. Targets are scores [-log latency_ms], so higher = faster and
    the scale is comparable across tasks. *)

type sample = {
  features : float array;  (** transformed features, length 82 *)
  target : float;  (** [-log latency_ms] *)
  task_key : string;  (** workload key, for per-task metrics *)
}

type t = { train : sample array; valid : sample array }

val collect_tasks : ?max_tasks:int -> unit -> Compute.subgraph list
(** Distinct subgraphs of the six evaluation networks (batch 1 and 16),
    first-occurrence order, capped at [max_tasks] (default 500, as in the
    paper's TenSet subset). *)

val sample_valid_point : Rng.t -> Pack.t -> int -> float array option
(** Rejection-sample a feasible rounded log-space point (at most the given
    number of attempts). *)

val generate :
  Rng.t ->
  Device.t ->
  ?schedules_per_task:int ->
  ?runtime:Runtime.t ->
  ?cache_dir:string ->
  Compute.subgraph list ->
  sample array
(** Labelled samples for one device; [schedules_per_task] (default 256) is
    split across the task's sketches, mirroring the paper's 512-per-task
    selection at our scale. [runtime] parallelises the per-task pack
    compilation across domains and [cache_dir] reuses compiled packs from
    the persistent cache (see [Pack.prepare_all]); sampling itself stays
    sequential and deterministic, so the output is identical either
    way. *)

val split : Rng.t -> ?train_frac:float -> sample array -> t
(** Shuffle and split (default 90% train, Section 5). *)
