type t = {
  sizes : int array;  (* layer widths, length L+1, sizes.(0) = inputs *)
  params : float array;  (* per layer: weights row-major (out x in), then biases *)
  mean : float array;
  std : float array;
}

let n_inputs t = t.sizes.(0)
let num_params t = Array.length t.params

let layer_offsets sizes =
  let n = Array.length sizes - 1 in
  let offs = Array.make n 0 in
  let total = ref 0 in
  for l = 0 to n - 1 do
    offs.(l) <- !total;
    total := !total + (sizes.(l) * sizes.(l + 1)) + sizes.(l + 1)
  done;
  (offs, !total)

let create rng ?(hidden = [ 256; 256; 256 ]) ~n_inputs () =
  let sizes = Array.of_list ((n_inputs :: hidden) @ [ 1 ]) in
  let _, total = layer_offsets sizes in
  let params = Array.make total 0.0 in
  let offs, _ = layer_offsets sizes in
  Array.iteri
    (fun l off ->
      let n_in = sizes.(l) and n_out = sizes.(l + 1) in
      let scale = sqrt (2.0 /. float_of_int n_in) in
      for i = 0 to (n_in * n_out) - 1 do
        params.(off + i) <- Rng.gaussian rng *. scale
      done)
    offs;
  { sizes; params; mean = Array.make n_inputs 0.0; std = Array.make n_inputs 1.0 }

let set_normalizer t ~mean ~std =
  if Array.length mean <> n_inputs t || Array.length std <> n_inputs t then
    invalid_arg "Mlp.set_normalizer: arity mismatch";
  Array.blit mean 0 t.mean 0 (Array.length mean);
  Array.iteri (fun i s -> t.std.(i) <- max 1e-6 s) std

let normalize t x =
  Array.init (Array.length x) (fun i -> (x.(i) -. t.mean.(i)) /. t.std.(i))

(* Forward pass keeping the activations of every layer (for backward). *)
let forward_acts t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = Array.make (n_layers + 1) [||] in
  acts.(0) <- normalize t x;
  for l = 0 to n_layers - 1 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let out = Array.make n_out 0.0 in
    let prev = acts.(l) in
    for o = 0 to n_out - 1 do
      let row = off + (o * n_in) in
      let s = ref t.params.(off + (n_in * n_out) + o) in
      for i = 0 to n_in - 1 do
        s := !s +. (t.params.(row + i) *. prev.(i))
      done;
      out.(o) <- (if l < n_layers - 1 then max 0.0 !s else !s)
    done;
    acts.(l + 1) <- out
  done;
  acts

let c_forwards = Telemetry.counter Telemetry.global "model.forwards"

let forward t x =
  Telemetry.Counter.incr c_forwards;
  let acts = forward_acts t x in
  (acts.(Array.length acts - 1)).(0)

let forward_batch ?runtime t xs =
  (* forward reads [t.params] and allocates its own activations, so batch
     elements can score on any domain; training writes must stay on the
     caller's side of the join. *)
  match runtime with
  | None -> Array.map (forward t) xs
  | Some rt -> Runtime.parallel_map rt (forward t) xs

(* --- caller-owned workspaces ----------------------------------------------

   Pre-sized per-layer activation and delta buffers plus the layer offset
   table, so the fused objective path runs forward and input-gradient
   sweeps with zero allocation. Buffers are fully rewritten before being
   read, so reuse across calls cannot change results. *)

type workspace = {
  w_offs : int array;
  w_acts : float array array;  (* sizes.(l) wide, l = 0..n_layers *)
  w_delta : float array array;
  w_idx : int array;  (* active-output compression, max layer width *)
  w_dval : float array;
}

let workspace t =
  let offs, _ = layer_offsets t.sizes in
  let widest = Array.fold_left max 1 t.sizes in
  { w_offs = offs;
    w_acts = Array.map (fun n -> Array.make n 0.0) t.sizes;
    w_delta = Array.map (fun n -> Array.make n 0.0) t.sizes;
    w_idx = Array.make widest 0;
    w_dval = Array.make widest 0.0
  }

let check_ws t ws name =
  if
    Array.length ws.w_acts <> Array.length t.sizes
    || not (Array.for_all2 (fun row n -> Array.length row = n) ws.w_acts t.sizes)
  then invalid_arg (name ^ ": workspace does not match model")

(* Identical arithmetic, in the identical order, to [forward_acts] — the
   fused path must be bitwise-equal to the allocating one. The layer loop
   is register-blocked over four output neurons: each output's dot product
   still accumulates in the same i-ascending order (so every sum is
   bit-identical), but the four independent add chains overlap in the
   pipeline instead of serialising on FP-add latency. Indices are in
   range by construction ([check_ws] + [layer_offsets]), so the inner
   loops use unchecked accesses. *)
let forward_acts_into t ws x =
  if Array.length x <> n_inputs t then invalid_arg "Mlp.forward_into: input arity mismatch";
  let a0 = ws.w_acts.(0) in
  for i = 0 to Array.length a0 - 1 do
    a0.(i) <- (x.(i) -. t.mean.(i)) /. t.std.(i)
  done;
  let offs = ws.w_offs in
  let n_layers = Array.length offs in
  let p = t.params in
  for l = 0 to n_layers - 1 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let prev = ws.w_acts.(l) and out = ws.w_acts.(l + 1) in
    let relu = l < n_layers - 1 in
    let bias = off + (n_in * n_out) in
    let o = ref 0 in
    while !o + 3 < n_out do
      let o0 = !o in
      let r0 = off + (o0 * n_in) in
      let r1 = r0 + n_in and r2 = r0 + (2 * n_in) and r3 = r0 + (3 * n_in) in
      let s0 = ref (Array.unsafe_get p (bias + o0))
      and s1 = ref (Array.unsafe_get p (bias + o0 + 1))
      and s2 = ref (Array.unsafe_get p (bias + o0 + 2))
      and s3 = ref (Array.unsafe_get p (bias + o0 + 3)) in
      for i = 0 to n_in - 1 do
        let pi = Array.unsafe_get prev i in
        s0 := !s0 +. (Array.unsafe_get p (r0 + i) *. pi);
        s1 := !s1 +. (Array.unsafe_get p (r1 + i) *. pi);
        s2 := !s2 +. (Array.unsafe_get p (r2 + i) *. pi);
        s3 := !s3 +. (Array.unsafe_get p (r3 + i) *. pi)
      done;
      (* [if 0.0 >= s then 0.0 else s] is [max 0.0 s] spelled out — the
         call to the polymorphic [max] would box its float result. *)
      Array.unsafe_set out o0 (if relu && 0.0 >= !s0 then 0.0 else !s0);
      Array.unsafe_set out (o0 + 1) (if relu && 0.0 >= !s1 then 0.0 else !s1);
      Array.unsafe_set out (o0 + 2) (if relu && 0.0 >= !s2 then 0.0 else !s2);
      Array.unsafe_set out (o0 + 3) (if relu && 0.0 >= !s3 then 0.0 else !s3);
      o := o0 + 4
    done;
    while !o < n_out do
      let o0 = !o in
      let row = off + (o0 * n_in) in
      let s = ref (Array.unsafe_get p (bias + o0)) in
      for i = 0 to n_in - 1 do
        s := !s +. (Array.unsafe_get p (row + i) *. Array.unsafe_get prev i)
      done;
      Array.unsafe_set out o0 (if relu && 0.0 >= !s then 0.0 else !s);
      o := o0 + 1
    done
  done;
  n_layers

let forward_into t ws x =
  check_ws t ws "Mlp.forward_into";
  Telemetry.Counter.incr c_forwards;
  let n_layers = forward_acts_into t ws x in
  (ws.w_acts.(n_layers)).(0)

let input_gradient_into t ws x grad =
  check_ws t ws "Mlp.input_gradient_into";
  if Array.length grad <> n_inputs t then
    invalid_arg "Mlp.input_gradient_into: gradient arity mismatch";
  let n_layers = forward_acts_into t ws x in
  let score = (ws.w_acts.(n_layers)).(0) in
  let top = ws.w_delta.(n_layers) in
  Array.fill top 0 (Array.length top) 0.0;
  top.(0) <- 1.0;
  (* Reverse sweep, blocked like the forward one. The ReLU-masked/zero
     outputs are first compressed into (index, delta) pairs in ascending
     order; the accumulation into d_in.(i) then visits the surviving
     outputs in exactly the order the scalar loop would (the contributions
     of a 4-block are added one by one, not pre-summed), so the result is
     bit-identical to [input_gradient]. *)
  let p = t.params in
  for l = n_layers - 1 downto 0 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = ws.w_offs.(l) in
    let d_in = ws.w_delta.(l) in
    Array.fill d_in 0 n_in 0.0;
    let cur = ws.w_delta.(l + 1) in
    let nxt = ws.w_acts.(l + 1) in
    let relu = l < n_layers - 1 in
    let idx = ws.w_idx and dval = ws.w_dval in
    let nact = ref 0 in
    for o = 0 to n_out - 1 do
      (* ReLU mask on hidden outputs. *)
      let d = if relu && Array.unsafe_get nxt o <= 0.0 then 0.0 else Array.unsafe_get cur o in
      if d <> 0.0 then begin
        Array.unsafe_set idx !nact o;
        Array.unsafe_set dval !nact d;
        incr nact
      end
    done;
    let nact = !nact in
    let k = ref 0 in
    while !k + 3 < nact do
      let k0 = !k in
      let r0 = off + (Array.unsafe_get idx k0 * n_in)
      and r1 = off + (Array.unsafe_get idx (k0 + 1) * n_in)
      and r2 = off + (Array.unsafe_get idx (k0 + 2) * n_in)
      and r3 = off + (Array.unsafe_get idx (k0 + 3) * n_in) in
      let d0 = Array.unsafe_get dval k0
      and d1 = Array.unsafe_get dval (k0 + 1)
      and d2 = Array.unsafe_get dval (k0 + 2)
      and d3 = Array.unsafe_get dval (k0 + 3) in
      for i = 0 to n_in - 1 do
        let v = Array.unsafe_get d_in i in
        let v = v +. (d0 *. Array.unsafe_get p (r0 + i)) in
        let v = v +. (d1 *. Array.unsafe_get p (r1 + i)) in
        let v = v +. (d2 *. Array.unsafe_get p (r2 + i)) in
        let v = v +. (d3 *. Array.unsafe_get p (r3 + i)) in
        Array.unsafe_set d_in i v
      done;
      k := k0 + 4
    done;
    while !k < nact do
      let k0 = !k in
      let row = off + (Array.unsafe_get idx k0 * n_in) in
      let d = Array.unsafe_get dval k0 in
      for i = 0 to n_in - 1 do
        Array.unsafe_set d_in i
          (Array.unsafe_get d_in i +. (d *. Array.unsafe_get p (row + i)))
      done;
      k := k0 + 1
    done
  done;
  (* Undo the input normalisation scaling. *)
  let d0 = ws.w_delta.(0) in
  for i = 0 to Array.length grad - 1 do
    grad.(i) <- d0.(i) /. t.std.(i)
  done;
  score

let input_gradient t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = forward_acts t x in
  let score = (acts.(n_layers)).(0) in
  (* Backward: delta over layer outputs. *)
  let delta = ref [| 1.0 |] in
  for l = n_layers - 1 downto 0 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let d_in = Array.make n_in 0.0 in
    let cur = !delta in
    for o = 0 to n_out - 1 do
      (* ReLU mask on hidden outputs. *)
      let d =
        if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
      in
      if d <> 0.0 then begin
        let row = off + (o * n_in) in
        for i = 0 to n_in - 1 do
          d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
        done
      end
    done;
    delta := d_in
  done;
  (* Undo the input normalisation scaling. *)
  let g = Array.mapi (fun i d -> d /. t.std.(i)) !delta in
  (score, g)

let param_gradient t batch grads =
  (* Accumulate dMSE/dparams into [grads]; returns the batch loss. *)
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  Array.fill grads 0 (Array.length grads) 0.0;
  let loss = ref 0.0 in
  let bsz = float_of_int (Array.length batch) in
  Array.iter
    (fun (x, target) ->
      let acts = forward_acts t x in
      let pred = (acts.(n_layers)).(0) in
      let err = pred -. target in
      loss := !loss +. (err *. err);
      let delta = ref [| 2.0 *. err /. bsz |] in
      for l = n_layers - 1 downto 0 do
        let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
        let off = offs.(l) in
        let d_in = Array.make n_in 0.0 in
        let cur = !delta in
        let prev = acts.(l) in
        for o = 0 to n_out - 1 do
          let d =
            if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
          in
          if d <> 0.0 then begin
            let row = off + (o * n_in) in
            for i = 0 to n_in - 1 do
              grads.(row + i) <- grads.(row + i) +. (d *. prev.(i));
              d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
            done;
            grads.(off + (n_in * n_out) + o) <- grads.(off + (n_in * n_out) + o) +. d
          end
        done;
        delta := d_in
      done)
    batch;
  !loss /. bsz

let c_updates = Telemetry.counter Telemetry.global "model.updates"
let g_last_loss = Telemetry.gauge Telemetry.global "model.last_loss"

let train_batch t adam batch =
  if Array.length batch = 0 then 0.0
  else begin
    let grads = Array.make (num_params t) 0.0 in
    let loss = param_gradient t batch grads in
    Adam.step adam ~params:t.params ~grads;
    Telemetry.Counter.incr c_updates;
    Telemetry.Gauge.set g_last_loss loss;
    loss
  end

let adam_for ?(lr = 1e-3) t = Adam.create ~lr (num_params t)

let copy t =
  { sizes = Array.copy t.sizes; params = Array.copy t.params; mean = Array.copy t.mean;
    std = Array.copy t.std }

let save t path =
  let oc = open_out_bin path in
  Marshal.to_channel oc t [];
  close_out oc

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let t : t = Marshal.from_channel ic in
    close_in ic;
    Some t
  end
  else None
