type t = {
  sizes : int array;  (* layer widths, length L+1, sizes.(0) = inputs *)
  params : float array;  (* per layer: weights row-major (out x in), then biases *)
  mean : float array;
  std : float array;
}

let n_inputs t = t.sizes.(0)
let num_params t = Array.length t.params

let layer_offsets sizes =
  let n = Array.length sizes - 1 in
  let offs = Array.make n 0 in
  let total = ref 0 in
  for l = 0 to n - 1 do
    offs.(l) <- !total;
    total := !total + (sizes.(l) * sizes.(l + 1)) + sizes.(l + 1)
  done;
  (offs, !total)

let create rng ?(hidden = [ 256; 256; 256 ]) ~n_inputs () =
  let sizes = Array.of_list ((n_inputs :: hidden) @ [ 1 ]) in
  let _, total = layer_offsets sizes in
  let params = Array.make total 0.0 in
  let offs, _ = layer_offsets sizes in
  Array.iteri
    (fun l off ->
      let n_in = sizes.(l) and n_out = sizes.(l + 1) in
      let scale = sqrt (2.0 /. float_of_int n_in) in
      for i = 0 to (n_in * n_out) - 1 do
        params.(off + i) <- Rng.gaussian rng *. scale
      done)
    offs;
  { sizes; params; mean = Array.make n_inputs 0.0; std = Array.make n_inputs 1.0 }

let set_normalizer t ~mean ~std =
  if Array.length mean <> n_inputs t || Array.length std <> n_inputs t then
    invalid_arg "Mlp.set_normalizer: arity mismatch";
  Array.blit mean 0 t.mean 0 (Array.length mean);
  Array.iteri (fun i s -> t.std.(i) <- max 1e-6 s) std

let normalize t x =
  Array.init (Array.length x) (fun i -> (x.(i) -. t.mean.(i)) /. t.std.(i))

(* Forward pass keeping the activations of every layer (for backward). *)
let forward_acts t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = Array.make (n_layers + 1) [||] in
  acts.(0) <- normalize t x;
  for l = 0 to n_layers - 1 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let out = Array.make n_out 0.0 in
    let prev = acts.(l) in
    for o = 0 to n_out - 1 do
      let row = off + (o * n_in) in
      let s = ref t.params.(off + (n_in * n_out) + o) in
      for i = 0 to n_in - 1 do
        s := !s +. (t.params.(row + i) *. prev.(i))
      done;
      out.(o) <- (if l < n_layers - 1 then max 0.0 !s else !s)
    done;
    acts.(l + 1) <- out
  done;
  acts

let c_forwards = Telemetry.counter Telemetry.global "model.forwards"

let forward t x =
  Telemetry.Counter.incr c_forwards;
  let acts = forward_acts t x in
  (acts.(Array.length acts - 1)).(0)

(* --- caller-owned workspaces ----------------------------------------------

   Pre-sized per-layer activation and delta buffers plus the layer offset
   table, so the fused objective path runs forward and input-gradient
   sweeps with zero allocation. Buffers are fully rewritten before being
   read, so reuse across calls cannot change results. *)

type workspace = {
  w_offs : int array;
  w_acts : float array array;  (* sizes.(l) wide, l = 0..n_layers *)
  w_delta : float array array;
  w_idx : int array;  (* active-output compression, max layer width *)
  w_dval : float array;
}

let workspace t =
  let offs, _ = layer_offsets t.sizes in
  let widest = Array.fold_left max 1 t.sizes in
  { w_offs = offs;
    w_acts = Array.map (fun n -> Array.make n 0.0) t.sizes;
    w_delta = Array.map (fun n -> Array.make n 0.0) t.sizes;
    w_idx = Array.make widest 0;
    w_dval = Array.make widest 0.0
  }

let check_ws t ws name =
  if
    Array.length ws.w_acts <> Array.length t.sizes
    || not (Array.for_all2 (fun row n -> Array.length row = n) ws.w_acts t.sizes)
  then invalid_arg (name ^ ": workspace does not match model")

(* Identical arithmetic, in the identical order, to [forward_acts] — the
   fused path must be bitwise-equal to the allocating one. The layer loop
   is register-blocked over four output neurons: each output's dot product
   still accumulates in the same i-ascending order (so every sum is
   bit-identical), but the four independent add chains overlap in the
   pipeline instead of serialising on FP-add latency. Indices are in
   range by construction ([check_ws] + [layer_offsets]), so the inner
   loops use unchecked accesses. *)
let forward_acts_into t ws x =
  if Array.length x <> n_inputs t then invalid_arg "Mlp.forward_into: input arity mismatch";
  let a0 = ws.w_acts.(0) in
  for i = 0 to Array.length a0 - 1 do
    a0.(i) <- (x.(i) -. t.mean.(i)) /. t.std.(i)
  done;
  let offs = ws.w_offs in
  let n_layers = Array.length offs in
  let p = t.params in
  for l = 0 to n_layers - 1 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let prev = ws.w_acts.(l) and out = ws.w_acts.(l + 1) in
    let relu = l < n_layers - 1 in
    let bias = off + (n_in * n_out) in
    let o = ref 0 in
    while !o + 3 < n_out do
      let o0 = !o in
      let r0 = off + (o0 * n_in) in
      let r1 = r0 + n_in and r2 = r0 + (2 * n_in) and r3 = r0 + (3 * n_in) in
      let s0 = ref (Array.unsafe_get p (bias + o0))
      and s1 = ref (Array.unsafe_get p (bias + o0 + 1))
      and s2 = ref (Array.unsafe_get p (bias + o0 + 2))
      and s3 = ref (Array.unsafe_get p (bias + o0 + 3)) in
      for i = 0 to n_in - 1 do
        let pi = Array.unsafe_get prev i in
        s0 := !s0 +. (Array.unsafe_get p (r0 + i) *. pi);
        s1 := !s1 +. (Array.unsafe_get p (r1 + i) *. pi);
        s2 := !s2 +. (Array.unsafe_get p (r2 + i) *. pi);
        s3 := !s3 +. (Array.unsafe_get p (r3 + i) *. pi)
      done;
      (* [if 0.0 >= s then 0.0 else s] is [max 0.0 s] spelled out — the
         call to the polymorphic [max] would box its float result. *)
      Array.unsafe_set out o0 (if relu && 0.0 >= !s0 then 0.0 else !s0);
      Array.unsafe_set out (o0 + 1) (if relu && 0.0 >= !s1 then 0.0 else !s1);
      Array.unsafe_set out (o0 + 2) (if relu && 0.0 >= !s2 then 0.0 else !s2);
      Array.unsafe_set out (o0 + 3) (if relu && 0.0 >= !s3 then 0.0 else !s3);
      o := o0 + 4
    done;
    while !o < n_out do
      let o0 = !o in
      let row = off + (o0 * n_in) in
      let s = ref (Array.unsafe_get p (bias + o0)) in
      for i = 0 to n_in - 1 do
        s := !s +. (Array.unsafe_get p (row + i) *. Array.unsafe_get prev i)
      done;
      Array.unsafe_set out o0 (if relu && 0.0 >= !s then 0.0 else !s);
      o := o0 + 1
    done
  done;
  n_layers

let forward_into t ws x =
  check_ws t ws "Mlp.forward_into";
  Telemetry.Counter.incr c_forwards;
  let n_layers = forward_acts_into t ws x in
  (ws.w_acts.(n_layers)).(0)

let input_gradient_into t ws x grad =
  check_ws t ws "Mlp.input_gradient_into";
  if Array.length grad <> n_inputs t then
    invalid_arg "Mlp.input_gradient_into: gradient arity mismatch";
  let n_layers = forward_acts_into t ws x in
  let score = (ws.w_acts.(n_layers)).(0) in
  let top = ws.w_delta.(n_layers) in
  Array.fill top 0 (Array.length top) 0.0;
  top.(0) <- 1.0;
  (* Reverse sweep, blocked like the forward one. The ReLU-masked/zero
     outputs are first compressed into (index, delta) pairs in ascending
     order; the accumulation into d_in.(i) then visits the surviving
     outputs in exactly the order the scalar loop would (the contributions
     of a 4-block are added one by one, not pre-summed), so the result is
     bit-identical to [input_gradient]. *)
  let p = t.params in
  for l = n_layers - 1 downto 0 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = ws.w_offs.(l) in
    let d_in = ws.w_delta.(l) in
    Array.fill d_in 0 n_in 0.0;
    let cur = ws.w_delta.(l + 1) in
    let nxt = ws.w_acts.(l + 1) in
    let relu = l < n_layers - 1 in
    let idx = ws.w_idx and dval = ws.w_dval in
    let nact = ref 0 in
    for o = 0 to n_out - 1 do
      (* ReLU mask on hidden outputs. *)
      let d = if relu && Array.unsafe_get nxt o <= 0.0 then 0.0 else Array.unsafe_get cur o in
      if d <> 0.0 then begin
        Array.unsafe_set idx !nact o;
        Array.unsafe_set dval !nact d;
        incr nact
      end
    done;
    let nact = !nact in
    let k = ref 0 in
    while !k + 3 < nact do
      let k0 = !k in
      let r0 = off + (Array.unsafe_get idx k0 * n_in)
      and r1 = off + (Array.unsafe_get idx (k0 + 1) * n_in)
      and r2 = off + (Array.unsafe_get idx (k0 + 2) * n_in)
      and r3 = off + (Array.unsafe_get idx (k0 + 3) * n_in) in
      let d0 = Array.unsafe_get dval k0
      and d1 = Array.unsafe_get dval (k0 + 1)
      and d2 = Array.unsafe_get dval (k0 + 2)
      and d3 = Array.unsafe_get dval (k0 + 3) in
      for i = 0 to n_in - 1 do
        let v = Array.unsafe_get d_in i in
        let v = v +. (d0 *. Array.unsafe_get p (r0 + i)) in
        let v = v +. (d1 *. Array.unsafe_get p (r1 + i)) in
        let v = v +. (d2 *. Array.unsafe_get p (r2 + i)) in
        let v = v +. (d3 *. Array.unsafe_get p (r3 + i)) in
        Array.unsafe_set d_in i v
      done;
      k := k0 + 4
    done;
    while !k < nact do
      let k0 = !k in
      let row = off + (Array.unsafe_get idx k0 * n_in) in
      let d = Array.unsafe_get dval k0 in
      for i = 0 to n_in - 1 do
        Array.unsafe_set d_in i
          (Array.unsafe_get d_in i +. (d *. Array.unsafe_get p (row + i)))
      done;
      k := k0 + 1
    done
  done;
  (* Undo the input normalisation scaling. *)
  let d0 = ws.w_delta.(0) in
  for i = 0 to Array.length grad - 1 do
    grad.(i) <- d0.(i) /. t.std.(i)
  done;
  score

(* --- batched (structure-of-arrays) workspaces ------------------------------

   One batch workspace runs the forward / input-gradient / parameter-
   gradient sweeps over up to [b_cap] feature rows in lockstep. Caller
   inputs and outputs keep the lane-major row convention ([xs]/[grads]
   row [l] is candidate [l]'s vector), but the internal activation and
   delta planes are feature-major with row stride equal to the current
   batch — [b_acts.(l).((j * batch) + lane)] — so the lanes of one neuron
   are contiguous: the layer sweep loads each weight once per batch and
   walks unit-stride lane strips, a GEMM-shaped kernel that the C stubs
   below vectorise across lanes. Each lane's accumulation order is exactly
   the scalar kernels' (bias first, then inputs ascending; reverse-sweep
   contributions in ascending active-output order, zero-delta outputs
   skipped), so lane [l] of every batched sweep is bitwise-identical to
   the scalar [_into] call on that row alone, at any batch size, on both
   the OCaml and the C kernels. *)

(* The C kernels (mlp_stubs.c) run the same per-lane IEEE operation
   sequence packed across lanes; they are compiled with contraction and
   value-changing optimisations disabled, so vectorisation cannot change
   any lane's bits. [FELIX_NO_SIMD=1] (or [set_vector_kernels false])
   selects the portable OCaml loops instead — the equivalence tests
   exercise both. *)
external c_forward_layers :
  float array -> int array -> int array -> float array array -> int -> unit
  = "felix_mlp_forward_batch" [@@noalloc]

external c_forward_backward_layers :
  float array -> int array -> int array -> float array array -> float array array -> int
  -> unit
  = "felix_mlp_forward_backward_batch_byte" "felix_mlp_forward_backward_batch" [@@noalloc]

let vector_kernels =
  ref
    (match Sys.getenv_opt "FELIX_NO_SIMD" with
    | Some ("1" | "true" | "yes") -> false
    | _ -> true)

let set_vector_kernels on = vector_kernels := on
let using_vector_kernels () = !vector_kernels

type batch_workspace = {
  b_cap : int;
  b_offs : int array;
  b_acts : float array array;  (* per layer: cap * sizes.(l), feature-major *)
  b_delta : float array array;
  b_lidx : int array;  (* per-output active-lane compression, cap wide *)
  b_ldval : float array;
  b_x : float array;  (* cap * n_inputs staging rows (train/forward batch) *)
  b_t : float array;  (* cap staging targets *)
}

let batch_workspace t ~batch =
  if batch < 1 then invalid_arg "Mlp.batch_workspace: batch must be >= 1";
  let offs, _ = layer_offsets t.sizes in
  { b_cap = batch;
    b_offs = offs;
    b_acts = Array.map (fun n -> Array.make (batch * n) 0.0) t.sizes;
    b_delta = Array.map (fun n -> Array.make (batch * n) 0.0) t.sizes;
    b_lidx = Array.make batch 0;
    b_ldval = Array.make batch 0.0;
    b_x = Array.make (batch * t.sizes.(0)) 0.0;
    b_t = Array.make batch 0.0
  }

let batch_capacity bws = bws.b_cap

let check_bws t bws ~batch name =
  if batch < 1 || batch > bws.b_cap then invalid_arg (name ^ ": batch exceeds capacity");
  if
    Array.length bws.b_acts <> Array.length t.sizes
    || not
         (Array.for_all2
            (fun (row : float array) n -> Array.length row = bws.b_cap * n)
            bws.b_acts t.sizes)
  then invalid_arg (name ^ ": workspace does not match model")

(* Normalise the lane-major caller rows into the feature-major input plane
   — the only transpose on the batched path (a few KB against the MB-scale
   layer sweeps it feeds). *)
let normalize_batch t bws ~batch xs =
  let ni = t.sizes.(0) in
  let a0 = bws.b_acts.(0) in
  let mean = t.mean and std = t.std in
  for l = 0 to batch - 1 do
    let xb = l * ni in
    for i = 0 to ni - 1 do
      Array.unsafe_set a0 ((i * batch) + l)
        ((Array.unsafe_get xs (xb + i) -. Array.unsafe_get mean i)
        /. Array.unsafe_get std i)
    done
  done

(* Portable layer sweep: blocked over 2 output neurons x 4 lanes, so each
   weight load feeds 4 multiply-adds and each activation load 2, with the
   lane quad a contiguous strip of the feature-major plane. Every
   (lane, output) accumulator still sums bias-first then i-ascending,
   keeping each lane bit-identical to [forward_acts_into]. *)
let forward_layers_ocaml t bws ~batch =
  let offs = bws.b_offs in
  let n_layers = Array.length offs in
  let p = t.params in
  for layer = 0 to n_layers - 1 do
    let n_in = t.sizes.(layer) and n_out = t.sizes.(layer + 1) in
    let off = offs.(layer) in
    let prev = bws.b_acts.(layer) and out = bws.b_acts.(layer + 1) in
    let relu = layer < n_layers - 1 in
    let bias = off + (n_in * n_out) in
    let o = ref 0 in
    while !o + 1 < n_out do
      let o0 = !o in
      let r0 = off + (o0 * n_in) in
      let r1 = r0 + n_in in
      let b0 = Array.unsafe_get p (bias + o0) and b1 = Array.unsafe_get p (bias + o0 + 1) in
      let l = ref 0 in
      while !l + 3 < batch do
        let l0 = !l in
        let s00 = ref b0 and s01 = ref b0 and s02 = ref b0 and s03 = ref b0 in
        let s10 = ref b1 and s11 = ref b1 and s12 = ref b1 and s13 = ref b1 in
        for i = 0 to n_in - 1 do
          let w0 = Array.unsafe_get p (r0 + i) and w1 = Array.unsafe_get p (r1 + i) in
          let xb = (i * batch) + l0 in
          let x0 = Array.unsafe_get prev xb
          and x1 = Array.unsafe_get prev (xb + 1)
          and x2 = Array.unsafe_get prev (xb + 2)
          and x3 = Array.unsafe_get prev (xb + 3) in
          s00 := !s00 +. (w0 *. x0);
          s01 := !s01 +. (w0 *. x1);
          s02 := !s02 +. (w0 *. x2);
          s03 := !s03 +. (w0 *. x3);
          s10 := !s10 +. (w1 *. x0);
          s11 := !s11 +. (w1 *. x1);
          s12 := !s12 +. (w1 *. x2);
          s13 := !s13 +. (w1 *. x3)
        done;
        let oa = (o0 * batch) + l0 in
        let ob = oa + batch in
        Array.unsafe_set out oa (if relu && 0.0 >= !s00 then 0.0 else !s00);
        Array.unsafe_set out (oa + 1) (if relu && 0.0 >= !s01 then 0.0 else !s01);
        Array.unsafe_set out (oa + 2) (if relu && 0.0 >= !s02 then 0.0 else !s02);
        Array.unsafe_set out (oa + 3) (if relu && 0.0 >= !s03 then 0.0 else !s03);
        Array.unsafe_set out ob (if relu && 0.0 >= !s10 then 0.0 else !s10);
        Array.unsafe_set out (ob + 1) (if relu && 0.0 >= !s11 then 0.0 else !s11);
        Array.unsafe_set out (ob + 2) (if relu && 0.0 >= !s12 then 0.0 else !s12);
        Array.unsafe_set out (ob + 3) (if relu && 0.0 >= !s13 then 0.0 else !s13);
        l := l0 + 4
      done;
      while !l < batch do
        let l0 = !l in
        let s0 = ref b0 and s1 = ref b1 in
        for i = 0 to n_in - 1 do
          let x = Array.unsafe_get prev ((i * batch) + l0) in
          s0 := !s0 +. (Array.unsafe_get p (r0 + i) *. x);
          s1 := !s1 +. (Array.unsafe_get p (r1 + i) *. x)
        done;
        let oa = (o0 * batch) + l0 in
        Array.unsafe_set out oa (if relu && 0.0 >= !s0 then 0.0 else !s0);
        Array.unsafe_set out (oa + batch) (if relu && 0.0 >= !s1 then 0.0 else !s1);
        l := l0 + 1
      done;
      o := o0 + 2
    done;
    while !o < n_out do
      let o0 = !o in
      let r0 = off + (o0 * n_in) in
      let b0 = Array.unsafe_get p (bias + o0) in
      let l = ref 0 in
      while !l + 3 < batch do
        let l0 = !l in
        let s0 = ref b0 and s1 = ref b0 and s2 = ref b0 and s3 = ref b0 in
        for i = 0 to n_in - 1 do
          let w = Array.unsafe_get p (r0 + i) in
          let xb = (i * batch) + l0 in
          s0 := !s0 +. (w *. Array.unsafe_get prev xb);
          s1 := !s1 +. (w *. Array.unsafe_get prev (xb + 1));
          s2 := !s2 +. (w *. Array.unsafe_get prev (xb + 2));
          s3 := !s3 +. (w *. Array.unsafe_get prev (xb + 3))
        done;
        let oa = (o0 * batch) + l0 in
        Array.unsafe_set out oa (if relu && 0.0 >= !s0 then 0.0 else !s0);
        Array.unsafe_set out (oa + 1) (if relu && 0.0 >= !s1 then 0.0 else !s1);
        Array.unsafe_set out (oa + 2) (if relu && 0.0 >= !s2 then 0.0 else !s2);
        Array.unsafe_set out (oa + 3) (if relu && 0.0 >= !s3 then 0.0 else !s3);
        l := l0 + 4
      done;
      while !l < batch do
        let l0 = !l in
        let s = ref b0 in
        for i = 0 to n_in - 1 do
          s :=
            !s +. (Array.unsafe_get p (r0 + i) *. Array.unsafe_get prev ((i * batch) + l0))
        done;
        Array.unsafe_set out ((o0 * batch) + l0) (if relu && 0.0 >= !s then 0.0 else !s);
        l := l0 + 1
      done;
      o := o0 + 1
    done
  done

let forward_acts_batch t bws ~batch xs =
  normalize_batch t bws ~batch xs;
  if !vector_kernels then c_forward_layers t.params t.sizes bws.b_offs bws.b_acts batch
  else forward_layers_ocaml t bws ~batch;
  Array.length bws.b_offs

let forward_batch_into t bws ~batch xs ~scores =
  check_bws t bws ~batch "Mlp.forward_batch_into";
  if Array.length xs < batch * n_inputs t then
    invalid_arg "Mlp.forward_batch_into: input arity mismatch";
  if Array.length scores < batch then
    invalid_arg "Mlp.forward_batch_into: scores arity mismatch";
  Telemetry.Counter.incr ~by:batch c_forwards;
  let n_layers = forward_acts_batch t bws ~batch xs in
  let top = bws.b_acts.(n_layers) in
  for l = 0 to batch - 1 do
    Array.unsafe_set scores l (Array.unsafe_get top l)
  done

(* Portable reverse sweep, output-major: per output, compress the lanes
   where it is active (per-lane ReLU masks), then stream its weight row
   once for the whole batch, updating every active lane's cell of the
   feature-major d_in plane (a contiguous strip per input). Each d_in cell
   receives its o-contributions in ascending-o order with zero-delta
   outputs skipped — exactly the order of the compressed per-lane loop in
   [input_gradient_into] — so every lane is bit-identical to the scalar
   path while weights load once per batch instead of once per lane. *)
let backward_layers_ocaml t bws ~batch =
  let n_layers = Array.length bws.b_offs in
  let top = bws.b_delta.(n_layers) in
  Array.fill top 0 (batch * t.sizes.(n_layers)) 0.0;
  for l = 0 to batch - 1 do
    top.(l) <- 1.0
  done;
  let p = t.params in
  let lidx = bws.b_lidx and ldval = bws.b_ldval in
  for layer = n_layers - 1 downto 0 do
    let n_in = t.sizes.(layer) and n_out = t.sizes.(layer + 1) in
    let off = bws.b_offs.(layer) in
    let d_in = bws.b_delta.(layer) in
    Array.fill d_in 0 (batch * n_in) 0.0;
    let cur = bws.b_delta.(layer + 1) in
    let nxt = bws.b_acts.(layer + 1) in
    let relu = layer < n_layers - 1 in
    for o = 0 to n_out - 1 do
      let ob = o * batch in
      let nact = ref 0 in
      for lane = 0 to batch - 1 do
        let d =
          if relu && Array.unsafe_get nxt (ob + lane) <= 0.0 then 0.0
          else Array.unsafe_get cur (ob + lane)
        in
        if d <> 0.0 then begin
          Array.unsafe_set lidx !nact lane;
          Array.unsafe_set ldval !nact d;
          incr nact
        end
      done;
      let nact = !nact in
      if nact > 0 then begin
        let row = off + (o * n_in) in
        for i = 0 to n_in - 1 do
          let w = Array.unsafe_get p (row + i) in
          let ib = i * batch in
          for k = 0 to nact - 1 do
            let pi = ib + Array.unsafe_get lidx k in
            Array.unsafe_set d_in pi
              (Array.unsafe_get d_in pi +. (Array.unsafe_get ldval k *. w))
          done
        done
      end
    done
  done

let input_gradient_batch_into t bws ~batch xs ~grads ~scores =
  check_bws t bws ~batch "Mlp.input_gradient_batch_into";
  if Array.length xs < batch * n_inputs t then
    invalid_arg "Mlp.input_gradient_batch_into: input arity mismatch";
  if Array.length grads < batch * n_inputs t then
    invalid_arg "Mlp.input_gradient_batch_into: gradient arity mismatch";
  if Array.length scores < batch then
    invalid_arg "Mlp.input_gradient_batch_into: scores arity mismatch";
  normalize_batch t bws ~batch xs;
  let n_layers = Array.length bws.b_offs in
  if !vector_kernels then
    c_forward_backward_layers t.params t.sizes bws.b_offs bws.b_acts bws.b_delta batch
  else begin
    forward_layers_ocaml t bws ~batch;
    backward_layers_ocaml t bws ~batch
  end;
  (* Lane-major caller outputs: scores from the top activations, gradients
     un-normalised back through the input scaling. *)
  let d0 = bws.b_delta.(0) in
  let ni = t.sizes.(0) in
  let topacts = bws.b_acts.(n_layers) in
  for lane = 0 to batch - 1 do
    Array.unsafe_set scores lane (Array.unsafe_get topacts lane);
    let gb = lane * ni in
    for i = 0 to ni - 1 do
      Array.unsafe_set grads (gb + i)
        (Array.unsafe_get d0 ((i * batch) + lane) /. Array.unsafe_get t.std i)
    done
  done

let param_gradient_batch_into t bws ~batch ~xs ~targets grads =
  check_bws t bws ~batch "Mlp.param_gradient_batch_into";
  if Array.length xs < batch * n_inputs t then
    invalid_arg "Mlp.param_gradient_batch_into: input arity mismatch";
  if Array.length targets < batch then
    invalid_arg "Mlp.param_gradient_batch_into: target arity mismatch";
  if Array.length grads <> num_params t then
    invalid_arg "Mlp.param_gradient_batch_into: gradient arity mismatch";
  let n_layers = forward_acts_batch t bws ~batch xs in
  Array.fill grads 0 (Array.length grads) 0.0;
  (* Loss and top deltas in lane order — the example order of the scalar
     [param_gradient] loop, so the running loss sum sees the same
     additions in the same sequence. *)
  let top = bws.b_acts.(n_layers) in
  let dtop = bws.b_delta.(n_layers) in
  let loss = ref 0.0 in
  let bsz = float_of_int batch in
  for lane = 0 to batch - 1 do
    let err = Array.unsafe_get top lane -. Array.unsafe_get targets lane in
    loss := !loss +. (err *. err);
    Array.unsafe_set dtop lane (2.0 *. err /. bsz)
  done;
  (* Per layer (descending) and output, compress the lanes where the
     output is active, then sweep the inputs once: each weight cell
     accumulates its active lanes in lane-ascending order — exactly the
     example order of the scalar loop — and each lane's d_in cell gains
     its o-contributions in the same ascending-o order. The weight and
     gradient cells load once per (o, i) instead of once per example. *)
  let p = t.params in
  let lidx = bws.b_lidx and ldval = bws.b_ldval in
  for layer = n_layers - 1 downto 0 do
    let n_in = t.sizes.(layer) and n_out = t.sizes.(layer + 1) in
    let off = bws.b_offs.(layer) in
    let d_in = bws.b_delta.(layer) in
    Array.fill d_in 0 (batch * n_in) 0.0;
    let cur = bws.b_delta.(layer + 1) in
    let nxt = bws.b_acts.(layer + 1) in
    let prev = bws.b_acts.(layer) in
    let relu = layer < n_layers - 1 in
    let bias = off + (n_in * n_out) in
    for o = 0 to n_out - 1 do
      let ob = o * batch in
      let nact = ref 0 in
      for lane = 0 to batch - 1 do
        let d =
          if relu && Array.unsafe_get nxt (ob + lane) <= 0.0 then 0.0
          else Array.unsafe_get cur (ob + lane)
        in
        if d <> 0.0 then begin
          Array.unsafe_set lidx !nact lane;
          Array.unsafe_set ldval !nact d;
          incr nact
        end
      done;
      let nact = !nact in
      if nact > 0 then begin
        let row = off + (o * n_in) in
        for i = 0 to n_in - 1 do
          let w = Array.unsafe_get p (row + i) in
          let ib = i * batch in
          let g = ref (Array.unsafe_get grads (row + i)) in
          for k = 0 to nact - 1 do
            let lane = Array.unsafe_get lidx k in
            let d = Array.unsafe_get ldval k in
            let pi = ib + lane in
            g := !g +. (d *. Array.unsafe_get prev pi);
            Array.unsafe_set d_in pi (Array.unsafe_get d_in pi +. (d *. w))
          done;
          Array.unsafe_set grads (row + i) !g
        done;
        let gb = ref (Array.unsafe_get grads (bias + o)) in
        for k = 0 to nact - 1 do
          gb := !gb +. Array.unsafe_get ldval k
        done;
        Array.unsafe_set grads (bias + o) !gb
      end
    done
  done;
  !loss /. bsz

let input_gradient t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = forward_acts t x in
  let score = (acts.(n_layers)).(0) in
  (* Backward: delta over layer outputs. *)
  let delta = ref [| 1.0 |] in
  for l = n_layers - 1 downto 0 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let d_in = Array.make n_in 0.0 in
    let cur = !delta in
    for o = 0 to n_out - 1 do
      (* ReLU mask on hidden outputs. *)
      let d =
        if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
      in
      if d <> 0.0 then begin
        let row = off + (o * n_in) in
        for i = 0 to n_in - 1 do
          d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
        done
      end
    done;
    delta := d_in
  done;
  (* Undo the input normalisation scaling. *)
  let g = Array.mapi (fun i d -> d /. t.std.(i)) !delta in
  (score, g)

let param_gradient t batch grads =
  (* Accumulate dMSE/dparams into [grads]; returns the batch loss. *)
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  Array.fill grads 0 (Array.length grads) 0.0;
  let loss = ref 0.0 in
  let bsz = float_of_int (Array.length batch) in
  Array.iter
    (fun (x, target) ->
      let acts = forward_acts t x in
      let pred = (acts.(n_layers)).(0) in
      let err = pred -. target in
      loss := !loss +. (err *. err);
      let delta = ref [| 2.0 *. err /. bsz |] in
      for l = n_layers - 1 downto 0 do
        let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
        let off = offs.(l) in
        let d_in = Array.make n_in 0.0 in
        let cur = !delta in
        let prev = acts.(l) in
        for o = 0 to n_out - 1 do
          let d =
            if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
          in
          if d <> 0.0 then begin
            let row = off + (o * n_in) in
            for i = 0 to n_in - 1 do
              grads.(row + i) <- grads.(row + i) +. (d *. prev.(i));
              d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
            done;
            grads.(off + (n_in * n_out) + o) <- grads.(off + (n_in * n_out) + o) +. d
          end
        done;
        delta := d_in
      done)
    batch;
  !loss /. bsz

let c_updates = Telemetry.counter Telemetry.global "model.updates"
let g_last_loss = Telemetry.gauge Telemetry.global "model.last_loss"

let train_batch ?ws t adam batch =
  let bsz = Array.length batch in
  if bsz = 0 then 0.0
  else begin
    let bws =
      match ws with Some w when w.b_cap >= bsz -> w | _ -> batch_workspace t ~batch:bsz
    in
    let ni = n_inputs t in
    Array.iteri
      (fun l (x, target) ->
        if Array.length x <> ni then invalid_arg "Mlp.train_batch: arity mismatch";
        Array.blit x 0 bws.b_x (l * ni) ni;
        bws.b_t.(l) <- target)
      batch;
    let grads = Array.make (num_params t) 0.0 in
    let loss =
      param_gradient_batch_into t bws ~batch:bsz ~xs:bws.b_x ~targets:bws.b_t grads
    in
    Adam.step adam ~params:t.params ~grads;
    Telemetry.Counter.incr c_updates;
    Telemetry.Gauge.set g_last_loss loss;
    loss
  end

let adam_for ?(lr = 1e-3) t = Adam.create ~lr (num_params t)

let copy t =
  { sizes = Array.copy t.sizes; params = Array.copy t.params; mean = Array.copy t.mean;
    std = Array.copy t.std }

(* --- versioned persistence -------------------------------------------------

   Weights and the input normaliser are stored as IEEE-754 bit strings in
   the one [Store.Artifact] envelope format, so a saved model reloads
   bit-identically and a load can tell "wrong file" from "old schema". *)

let artifact_kind = "felix-mlp"
let artifact_version = 1

let to_json t =
  Json.Obj
    [ ("sizes",
       Json.List
         (Array.to_list (Array.map (fun n -> Json.Num (float_of_int n)) t.sizes)));
      ("params", Json.Str (Store.Bits.of_floats t.params));
      ("mean", Json.Str (Store.Bits.of_floats t.mean));
      ("std", Json.Str (Store.Bits.of_floats t.std)) ]

let of_json j =
  let arr k =
    Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_floats
  in
  let sizes =
    match Json.find j "sizes" with
    | Some (Json.List l) ->
      let ints = List.filter_map Json.as_int l in
      if List.length ints = List.length l then Some (Array.of_list ints) else None
    | _ -> None
  in
  match (sizes, arr "params", arr "mean", arr "std") with
  | Some sizes, Some params, Some mean, Some std when Array.length sizes >= 2 ->
    let _, total = layer_offsets sizes in
    if
      total = Array.length params
      && Array.length mean = sizes.(0)
      && Array.length std = sizes.(0)
    then Some { sizes; params; mean; std }
    else None
  | _ -> None

let save_file t path =
  Store.Artifact.save ~path ~kind:artifact_kind ~version:artifact_version (to_json t)

let load_file path =
  match Store.Artifact.load ~path ~kind:artifact_kind ~version:artifact_version with
  | Error e -> Error e
  | Ok payload -> (
    match of_json payload with
    | Some t -> Ok t
    | None -> Error (Store.Corrupt (path ^ ": invalid cost-model payload")))
