type t = {
  sizes : int array;  (* layer widths, length L+1, sizes.(0) = inputs *)
  params : float array;  (* per layer: weights row-major (out x in), then biases *)
  mean : float array;
  std : float array;
}

let n_inputs t = t.sizes.(0)
let num_params t = Array.length t.params

let layer_offsets sizes =
  let n = Array.length sizes - 1 in
  let offs = Array.make n 0 in
  let total = ref 0 in
  for l = 0 to n - 1 do
    offs.(l) <- !total;
    total := !total + (sizes.(l) * sizes.(l + 1)) + sizes.(l + 1)
  done;
  (offs, !total)

let create rng ?(hidden = [ 256; 256; 256 ]) ~n_inputs () =
  let sizes = Array.of_list ((n_inputs :: hidden) @ [ 1 ]) in
  let _, total = layer_offsets sizes in
  let params = Array.make total 0.0 in
  let offs, _ = layer_offsets sizes in
  Array.iteri
    (fun l off ->
      let n_in = sizes.(l) and n_out = sizes.(l + 1) in
      let scale = sqrt (2.0 /. float_of_int n_in) in
      for i = 0 to (n_in * n_out) - 1 do
        params.(off + i) <- Rng.gaussian rng *. scale
      done)
    offs;
  { sizes; params; mean = Array.make n_inputs 0.0; std = Array.make n_inputs 1.0 }

let set_normalizer t ~mean ~std =
  if Array.length mean <> n_inputs t || Array.length std <> n_inputs t then
    invalid_arg "Mlp.set_normalizer: arity mismatch";
  Array.blit mean 0 t.mean 0 (Array.length mean);
  Array.iteri (fun i s -> t.std.(i) <- max 1e-6 s) std

let normalize t x =
  Array.init (Array.length x) (fun i -> (x.(i) -. t.mean.(i)) /. t.std.(i))

(* Forward pass keeping the activations of every layer (for backward). *)
let forward_acts t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = Array.make (n_layers + 1) [||] in
  acts.(0) <- normalize t x;
  for l = 0 to n_layers - 1 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let out = Array.make n_out 0.0 in
    let prev = acts.(l) in
    for o = 0 to n_out - 1 do
      let row = off + (o * n_in) in
      let s = ref t.params.(off + (n_in * n_out) + o) in
      for i = 0 to n_in - 1 do
        s := !s +. (t.params.(row + i) *. prev.(i))
      done;
      out.(o) <- (if l < n_layers - 1 then max 0.0 !s else !s)
    done;
    acts.(l + 1) <- out
  done;
  acts

let c_forwards = Telemetry.counter Telemetry.global "model.forwards"

let forward t x =
  Telemetry.Counter.incr c_forwards;
  let acts = forward_acts t x in
  (acts.(Array.length acts - 1)).(0)

let forward_batch ?runtime t xs =
  (* forward reads [t.params] and allocates its own activations, so batch
     elements can score on any domain; training writes must stay on the
     caller's side of the join. *)
  match runtime with
  | None -> Array.map (forward t) xs
  | Some rt -> Runtime.parallel_map rt (forward t) xs

let input_gradient t x =
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  let acts = forward_acts t x in
  let score = (acts.(n_layers)).(0) in
  (* Backward: delta over layer outputs. *)
  let delta = ref [| 1.0 |] in
  for l = n_layers - 1 downto 0 do
    let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
    let off = offs.(l) in
    let d_in = Array.make n_in 0.0 in
    let cur = !delta in
    for o = 0 to n_out - 1 do
      (* ReLU mask on hidden outputs. *)
      let d =
        if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
      in
      if d <> 0.0 then begin
        let row = off + (o * n_in) in
        for i = 0 to n_in - 1 do
          d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
        done
      end
    done;
    delta := d_in
  done;
  (* Undo the input normalisation scaling. *)
  let g = Array.mapi (fun i d -> d /. t.std.(i)) !delta in
  (score, g)

let param_gradient t batch grads =
  (* Accumulate dMSE/dparams into [grads]; returns the batch loss. *)
  let offs, _ = layer_offsets t.sizes in
  let n_layers = Array.length offs in
  Array.fill grads 0 (Array.length grads) 0.0;
  let loss = ref 0.0 in
  let bsz = float_of_int (Array.length batch) in
  Array.iter
    (fun (x, target) ->
      let acts = forward_acts t x in
      let pred = (acts.(n_layers)).(0) in
      let err = pred -. target in
      loss := !loss +. (err *. err);
      let delta = ref [| 2.0 *. err /. bsz |] in
      for l = n_layers - 1 downto 0 do
        let n_in = t.sizes.(l) and n_out = t.sizes.(l + 1) in
        let off = offs.(l) in
        let d_in = Array.make n_in 0.0 in
        let cur = !delta in
        let prev = acts.(l) in
        for o = 0 to n_out - 1 do
          let d =
            if l < n_layers - 1 && (acts.(l + 1)).(o) <= 0.0 then 0.0 else cur.(o)
          in
          if d <> 0.0 then begin
            let row = off + (o * n_in) in
            for i = 0 to n_in - 1 do
              grads.(row + i) <- grads.(row + i) +. (d *. prev.(i));
              d_in.(i) <- d_in.(i) +. (d *. t.params.(row + i))
            done;
            grads.(off + (n_in * n_out) + o) <- grads.(off + (n_in * n_out) + o) +. d
          end
        done;
        delta := d_in
      done)
    batch;
  !loss /. bsz

let c_updates = Telemetry.counter Telemetry.global "model.updates"
let g_last_loss = Telemetry.gauge Telemetry.global "model.last_loss"

let train_batch t adam batch =
  if Array.length batch = 0 then 0.0
  else begin
    let grads = Array.make (num_params t) 0.0 in
    let loss = param_gradient t batch grads in
    Adam.step adam ~params:t.params ~grads;
    Telemetry.Counter.incr c_updates;
    Telemetry.Gauge.set g_last_loss loss;
    loss
  end

let adam_for ?(lr = 1e-3) t = Adam.create ~lr (num_params t)

let copy t =
  { sizes = Array.copy t.sizes; params = Array.copy t.params; mean = Array.copy t.mean;
    std = Array.copy t.std }

let save t path =
  let oc = open_out_bin path in
  Marshal.to_channel oc t [];
  close_out oc

let load path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    let t : t = Marshal.from_channel ic in
    close_in ic;
    Some t
  end
  else None
