type t = {
  mutable lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  m : float array;
  v : float array;
  mutable steps : int;
}

let create ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) n =
  if n < 0 then invalid_arg "Adam.create: negative size";
  { lr; beta1; beta2; eps; m = Array.make n 0.0; v = Array.make n 0.0; steps = 0 }

let lr t = t.lr
let set_lr t lr = t.lr <- lr

let step t ~params ~grads =
  let n = Array.length t.m in
  if Array.length params <> n || Array.length grads <> n then
    invalid_arg "Adam.step: arity mismatch";
  t.steps <- t.steps + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.steps) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.steps) in
  for i = 0 to n - 1 do
    let g = grads.(i) in
    t.m.(i) <- (t.beta1 *. t.m.(i)) +. ((1.0 -. t.beta1) *. g);
    t.v.(i) <- (t.beta2 *. t.v.(i)) +. ((1.0 -. t.beta2) *. g *. g);
    let mh = t.m.(i) /. bc1 and vh = t.v.(i) /. bc2 in
    params.(i) <- params.(i) -. (t.lr *. mh /. (sqrt vh +. t.eps))
  done

let reset t =
  Array.fill t.m 0 (Array.length t.m) 0.0;
  Array.fill t.v 0 (Array.length t.v) 0.0;
  t.steps <- 0
