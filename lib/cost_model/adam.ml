type t = {
  mutable lr : float;
  beta1 : float;
  beta2 : float;
  eps : float;
  m : float array;
  v : float array;
  mutable steps : int;
}

let create ?(lr = 1e-3) ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) n =
  if n < 0 then invalid_arg "Adam.create: negative size";
  { lr; beta1; beta2; eps; m = Array.make n 0.0; v = Array.make n 0.0; steps = 0 }

let create_batch ?lr ?beta1 ?beta2 ?eps ~batch n =
  if batch < 1 then invalid_arg "Adam.create_batch: batch must be >= 1";
  if n < 0 then invalid_arg "Adam.create_batch: negative size";
  create ?lr ?beta1 ?beta2 ?eps (batch * n)

let lr t = t.lr
let set_lr t lr = t.lr <- lr

(* The fused elementwise sweep shared by [step] and [step_batch]. Hoisting
   the per-step constants and using unchecked accesses changes no float:
   every element's update is the exact expression sequence of the
   historical per-element loop. *)
let sweep t ~params ~grads =
  t.steps <- t.steps + 1;
  let bc1 = 1.0 -. (t.beta1 ** float_of_int t.steps) in
  let bc2 = 1.0 -. (t.beta2 ** float_of_int t.steps) in
  let b1 = t.beta1 and b2 = t.beta2 in
  let c1 = 1.0 -. t.beta1 and c2 = 1.0 -. t.beta2 in
  let lr = t.lr and eps = t.eps in
  let m = t.m and v = t.v in
  for i = 0 to Array.length m - 1 do
    let g = Array.unsafe_get grads i in
    let mi = (b1 *. Array.unsafe_get m i) +. (c1 *. g) in
    let vi = (b2 *. Array.unsafe_get v i) +. (c2 *. g *. g) in
    Array.unsafe_set m i mi;
    Array.unsafe_set v i vi;
    let mh = mi /. bc1 and vh = vi /. bc2 in
    Array.unsafe_set params i
      (Array.unsafe_get params i -. (lr *. mh /. (sqrt vh +. eps)))
  done

let step t ~params ~grads =
  let n = Array.length t.m in
  if Array.length params <> n || Array.length grads <> n then
    invalid_arg "Adam.step: arity mismatch";
  sweep t ~params ~grads

let step_batch t ~batch ~params ~grads =
  let n = Array.length t.m in
  if batch < 1 then invalid_arg "Adam.step_batch: batch must be >= 1";
  if n mod batch <> 0 then
    invalid_arg "Adam.step_batch: batch does not divide the state size";
  if Array.length params <> n || Array.length grads <> n then
    invalid_arg "Adam.step_batch: arity mismatch";
  sweep t ~params ~grads

(* Bit-exact optimizer-state codec for the tuning-store checkpoints. *)
let to_json t =
  Json.Obj
    [ ("lr", Json.Str (Store.Bits.of_float t.lr));
      ("beta1", Json.Str (Store.Bits.of_float t.beta1));
      ("beta2", Json.Str (Store.Bits.of_float t.beta2));
      ("eps", Json.Str (Store.Bits.of_float t.eps));
      ("m", Json.Str (Store.Bits.of_floats t.m));
      ("v", Json.Str (Store.Bits.of_floats t.v));
      ("steps", Json.Num (float_of_int t.steps)) ]

let of_json j =
  let bits k =
    Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_float
  in
  let arr k =
    Option.bind (Option.bind (Json.find j k) Json.as_string) Store.Bits.to_floats
  in
  match
    ( bits "lr", bits "beta1", bits "beta2", bits "eps", arr "m", arr "v",
      Option.bind (Json.find j "steps") Json.as_int )
  with
  | Some lr, Some beta1, Some beta2, Some eps, Some m, Some v, Some steps
    when Array.length m = Array.length v ->
    Some { lr; beta1; beta2; eps; m; v; steps }
  | _ -> None

let reset t =
  Array.fill t.m 0 (Array.length t.m) 0.0;
  Array.fill t.v 0 (Array.length t.v) 0.0;
  t.steps <- 0
