(** Adam optimiser [Kingma & Ba 2014] over a flat parameter vector.

    Used both to train the MLP cost model (Section 5, "cost model
    training") and as the gradient-descent engine of Algorithm 1 (line 14,
    [optimizer = Adam()]). *)

type t

val create : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> int -> t
(** [create n] for [n] parameters. Defaults: lr 1e-3, beta1 0.9,
    beta2 0.999, eps 1e-8. *)

val lr : t -> float
val set_lr : t -> float -> unit

val step : t -> params:float array -> grads:float array -> unit
(** One in-place update. Raises [Invalid_argument] on arity mismatch. *)

val reset : t -> unit
(** Clear moments and the step counter. *)
