(** Adam optimiser [Kingma & Ba 2014] over a flat parameter vector.

    Used both to train the MLP cost model (Section 5, "cost model
    training") and as the gradient-descent engine of Algorithm 1 (line 14,
    [optimizer = Adam()]). *)

type t

val create : ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> int -> t
(** [create n] for [n] parameters. Defaults: lr 1e-3, beta1 0.9,
    beta2 0.999, eps 1e-8. *)

val lr : t -> float
val set_lr : t -> float -> unit

val step : t -> params:float array -> grads:float array -> unit
(** One in-place update. Raises [Invalid_argument] on arity mismatch. *)

(** {2 Batched lockstep descent}

    The update is purely elementwise with one shared step counter, so
    descending [batch] candidates of [n] parameters each is a single
    fused sweep over flat lane-major [batch * n] arrays. Lane [l] of
    {!step_batch} is bitwise-identical to an independent scalar optimiser
    stepping that candidate alone (the lanes share nothing but the
    hyperparameters and the step count). *)

val create_batch :
  ?lr:float -> ?beta1:float -> ?beta2:float -> ?eps:float -> batch:int -> int -> t
(** [create_batch ~batch n] sizes the moment vectors for [batch]
    candidates of [n] parameters each. *)

val step_batch : t -> batch:int -> params:float array -> grads:float array -> unit
(** One lockstep update of all lanes; [params] and [grads] are lane-major
    [batch * n] arrays. Raises [Invalid_argument] when [batch] does not
    divide the state size or on arity mismatch. *)

val reset : t -> unit
(** Clear moments and the step counter. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option
(** Bit-exact state codec (moments, step counter, hyperparameters) for
    the tuning-store checkpoints. *)
