(** Cost-model pretraining and evaluation (paper Section 5).

    One model is trained per target device, once, and reused for every
    network — the key property that separates Felix from MindMappings
    (Section 7). *)

type metrics = {
  mse : float;
  spearman : float;  (** rank correlation over the whole validation set *)
  per_task_spearman : float;  (** mean of per-task rank correlations *)
  n_samples : int;
}

val normalizer_of : Dataset.sample array -> float array * float array
(** Per-feature mean and standard deviation. *)

val pretrain :
  Rng.t ->
  ?hidden:int list ->
  ?epochs:int ->
  ?batch_size:int ->
  ?lr:float ->
  Dataset.t ->
  Mlp.t * metrics
(** Train from scratch; returns the model and validation metrics.
    Defaults: hidden [192;192;192], 8 epochs, batch 256, lr 1e-3. *)

val evaluate : Mlp.t -> Dataset.sample array -> metrics

val pretrained_for_device :
  ?cache_dir:string -> ?seed:int -> Device.t -> Mlp.t
(** End-to-end: collect tasks, generate the dataset on the device's
    simulator, train, and cache the result under
    [cache_dir/costmodel_<device>.bin] (default ["_artifacts"]). Subsequent
    calls load the cache. *)
