(** Feed-forward cost model C (paper Sections 3.4 and 4).

    The TenSet MLP architecture: four linear layers with ReLU in between,
    taking the 82 transformed program features and predicting a scalar
    performance score (we use [-log latency_ms], so higher is faster).
    Parameters live in one flat array so {!Adam} can train them and so the
    model can be serialised for reuse across benchmark runs.

    Two gradient paths are exposed:
    - {!input_gradient}: dC/dinput — composed with the feature tape's VJP
      this differentiates the whole objective of Equation 4;
    - {!train_batch}: dLoss/dparams — used for pretraining and for the
      online update of Algorithm 1 (line 24). *)

type t

val create : Rng.t -> ?hidden:int list -> n_inputs:int -> unit -> t
(** He-initialised network; default hidden sizes [[256; 256; 256]]
    (about 150K parameters on 82 inputs, the scale of TenSet's model). *)

val n_inputs : t -> int
val num_params : t -> int

val set_normalizer : t -> mean:float array -> std:float array -> unit
(** Input standardisation applied inside {!forward}; estimated from the
    training set. *)

val forward : t -> float array -> float
(** Predicted score (higher = better). *)

val input_gradient : t -> float array -> float * float array
(** [(score, dscore/dinput)] in one forward + backward pass. *)

val param_gradient : t -> (float array * float) array -> float array -> float
(** [param_gradient t batch grads] overwrites [grads] (length
    {!num_params}) with dMSE/dparams of the batch and returns the loss.
    The scalar reference implementation for the batched trainer; exposed
    for the bitwise-equivalence tests. *)

(** {2 Caller-owned workspaces}

    Pre-sized activation/delta buffers for the fused objective path: the
    [_into] variants below are bitwise-identical to {!forward} and
    {!input_gradient} but allocation-free. A workspace must match the
    model it was created from and must not be shared by concurrent
    callers; reuse across calls is safe (buffers are fully rewritten
    before being read). *)

type workspace

val workspace : t -> workspace

val forward_into : t -> workspace -> float array -> float
(** Predicted score, reusing the workspace buffers. *)

val input_gradient_into : t -> workspace -> float array -> float array -> float
(** [input_gradient_into t ws x grad] overwrites [grad] with
    dscore/dinput and returns the score. *)

(** {2 Batched (structure-of-arrays) kernels}

    A [batch_workspace] holds feature-major activation/delta planes for up
    to its capacity of feature rows (caller rows stay lane-major), turning
    the per-candidate layer loops into GEMM-shaped kernels that stream
    each weight once per batch instead of once per candidate and run
    vectorised across lanes by default (strict-IEEE C kernels — see
    mlp_stubs.c). Lane [l] of every batched sweep is bitwise-identical to
    the corresponding scalar [_into] call on that row alone, at any batch
    size, on either kernel set. Same ownership rules as {!workspace}. *)

val set_vector_kernels : bool -> unit
(** Select the vectorised C kernels ([true], the default) or the portable
    OCaml loops ([false]) for the batched sweeps — both are bit-identical
    per lane; the switch exists for testing and triage. The initial value
    honours [FELIX_NO_SIMD=1] (forces the OCaml loops). *)

val using_vector_kernels : unit -> bool
(** Which batched kernel set is currently selected. *)

type batch_workspace

val batch_workspace : t -> batch:int -> batch_workspace
(** Buffers for up to [batch] lanes ([batch >= 1]). *)

val batch_capacity : batch_workspace -> int

val forward_batch_into :
  t -> batch_workspace -> batch:int -> float array -> scores:float array -> unit
(** [forward_batch_into t bws ~batch xs ~scores] scores lanes
    [0..batch-1]; [xs] holds the feature rows lane-major
    ([xs.(l * n_inputs + i)]), predictions land in [scores.(l)]. *)

val input_gradient_batch_into :
  t ->
  batch_workspace ->
  batch:int ->
  float array ->
  grads:float array ->
  scores:float array ->
  unit
(** Lockstep {!input_gradient_into}: overwrites the first [batch]
    lane-major rows of [grads] with each lane's dscore/dinput and
    [scores.(l)] with its prediction. *)

val param_gradient_batch_into :
  t ->
  batch_workspace ->
  batch:int ->
  xs:float array ->
  targets:float array ->
  float array ->
  float
(** Lockstep {!param_gradient} over lane-major rows: overwrites the
    (flat, {!num_params}-wide) gradient and returns the MSE loss.
    Bitwise-identical to the scalar example loop — weight cells accumulate
    their active lanes in example order, input deltas their outputs in
    ascending order. *)

val train_batch :
  ?ws:batch_workspace -> t -> Adam.t -> (float array * float) array -> float
(** One Adam step on the mean-squared-error of the batch
    [(features, target_score)]; returns the batch loss (before the
    step). Runs on the batched kernels; pass [?ws] (capacity >= batch
    size) to reuse buffers across steps, otherwise one is allocated per
    call. *)

val adam_for : ?lr:float -> t -> Adam.t
(** Fresh optimiser state sized for this model's parameters. *)

val copy : t -> t
(** Deep copy (the tuners fine-tune a private copy per run). *)

(** {2 Versioned persistence}

    One [Store.Artifact] envelope (kind ["felix-mlp"], schema version 1);
    weights and the input normaliser are IEEE-754 bit strings, so a saved
    model reloads bit-identically. *)

val to_json : t -> Json.t
val of_json : Json.t -> t option
(** Payload codec, shared with the tuning-store checkpoints. *)

val save_file : t -> string -> (unit, Store.error) result
val load_file : string -> (t, Store.error) result
