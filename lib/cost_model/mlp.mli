(** Feed-forward cost model C (paper Sections 3.4 and 4).

    The TenSet MLP architecture: four linear layers with ReLU in between,
    taking the 82 transformed program features and predicting a scalar
    performance score (we use [-log latency_ms], so higher is faster).
    Parameters live in one flat array so {!Adam} can train them and so the
    model can be serialised for reuse across benchmark runs.

    Two gradient paths are exposed:
    - {!input_gradient}: dC/dinput — composed with the feature tape's VJP
      this differentiates the whole objective of Equation 4;
    - {!train_batch}: dLoss/dparams — used for pretraining and for the
      online update of Algorithm 1 (line 24). *)

type t

val create : Rng.t -> ?hidden:int list -> n_inputs:int -> unit -> t
(** He-initialised network; default hidden sizes [[256; 256; 256]]
    (about 150K parameters on 82 inputs, the scale of TenSet's model). *)

val n_inputs : t -> int
val num_params : t -> int

val set_normalizer : t -> mean:float array -> std:float array -> unit
(** Input standardisation applied inside {!forward}; estimated from the
    training set. *)

val forward : t -> float array -> float
(** Predicted score (higher = better). *)

val forward_batch : ?runtime:Runtime.t -> t -> float array array -> float array
(** {!forward} over a batch, fanned out across the runtime's domains when
    one is given. Inference only reads the parameters, so this is safe as
    long as no concurrent [train_batch] mutates the same model; results are
    identical to the sequential map. *)

val input_gradient : t -> float array -> float * float array
(** [(score, dscore/dinput)] in one forward + backward pass. *)

(** {2 Caller-owned workspaces}

    Pre-sized activation/delta buffers for the fused objective path: the
    [_into] variants below are bitwise-identical to {!forward} and
    {!input_gradient} but allocation-free. A workspace must match the
    model it was created from and must not be shared by concurrent
    callers; reuse across calls is safe (buffers are fully rewritten
    before being read). *)

type workspace

val workspace : t -> workspace

val forward_into : t -> workspace -> float array -> float
(** Predicted score, reusing the workspace buffers. *)

val input_gradient_into : t -> workspace -> float array -> float array -> float
(** [input_gradient_into t ws x grad] overwrites [grad] with
    dscore/dinput and returns the score. *)

val train_batch :
  t -> Adam.t -> (float array * float) array -> float
(** One Adam step on the mean-squared-error of the batch
    [(features, target_score)]; returns the batch loss (before the
    step). *)

val adam_for : ?lr:float -> t -> Adam.t
(** Fresh optimiser state sized for this model's parameters. *)

val copy : t -> t
(** Deep copy (the tuners fine-tune a private copy per run). *)

val save : t -> string -> unit
val load : string -> t option
(** Marshal-based persistence for caching pretrained models. *)
