type metrics = {
  mse : float;
  spearman : float;
  per_task_spearman : float;
  n_samples : int;
}

let normalizer_of samples =
  if Array.length samples = 0 then invalid_arg "Train.normalizer_of: empty dataset";
  let k = Array.length samples.(0).Dataset.features in
  let mean = Array.make k 0.0 and std = Array.make k 0.0 in
  let n = float_of_int (Array.length samples) in
  Array.iter
    (fun (s : Dataset.sample) -> Array.iteri (fun i v -> mean.(i) <- mean.(i) +. v) s.features)
    samples;
  Array.iteri (fun i v -> mean.(i) <- v /. n) mean;
  Array.iter
    (fun (s : Dataset.sample) ->
      Array.iteri (fun i v -> std.(i) <- std.(i) +. ((v -. mean.(i)) ** 2.0)) s.features)
    samples;
  Array.iteri (fun i v -> std.(i) <- sqrt (v /. n)) std;
  (mean, std)

let evaluate model samples =
  let n = Array.length samples in
  if n = 0 then { mse = 0.0; spearman = 0.0; per_task_spearman = 0.0; n_samples = 0 }
  else begin
    (* Scoring runs through the batched SoA forward in fixed-size chunks;
       each lane is bitwise the scalar [Mlp.forward] on that sample. *)
    let preds = Array.make n 0.0 in
    let ni = Mlp.n_inputs model in
    let chunk = min n 256 in
    let bws = Mlp.batch_workspace model ~batch:chunk in
    let xs = Array.make (chunk * ni) 0.0 in
    let scores = Array.make chunk 0.0 in
    let i = ref 0 in
    while !i < n do
      let len = min chunk (n - !i) in
      for l = 0 to len - 1 do
        Array.blit samples.(!i + l).Dataset.features 0 xs (l * ni) ni
      done;
      Mlp.forward_batch_into model bws ~batch:len xs ~scores;
      Array.blit scores 0 preds !i len;
      i := !i + len
    done;
    let targets = Array.map (fun (s : Dataset.sample) -> s.Dataset.target) samples in
    let mse =
      Array.fold_left ( +. ) 0.0
        (Array.mapi (fun i p -> (p -. targets.(i)) ** 2.0) preds)
      /. float_of_int n
    in
    let spearman = Stats.spearman preds targets in
    (* Per-task ranking quality: group by task key. *)
    let groups = Hashtbl.create 32 in
    Array.iteri
      (fun i (s : Dataset.sample) ->
        let l = Option.value ~default:[] (Hashtbl.find_opt groups s.task_key) in
        Hashtbl.replace groups s.task_key ((preds.(i), targets.(i)) :: l))
      samples;
    let rs =
      Hashtbl.fold
        (fun _ pairs acc ->
          if List.length pairs >= 8 then begin
            let p = Array.of_list (List.map fst pairs) in
            let t = Array.of_list (List.map snd pairs) in
            Stats.spearman p t :: acc
          end
          else acc)
        groups []
    in
    { mse; spearman; per_task_spearman = Stats.mean rs; n_samples = n }
  end

let pretrain rng ?(hidden = [ 192; 192; 192 ]) ?(epochs = 8) ?(batch_size = 256) ?(lr = 1e-3)
    (ds : Dataset.t) =
  if Array.length ds.train = 0 then invalid_arg "Train.pretrain: empty training set";
  Telemetry.with_span Telemetry.global "cost_model.pretrain"
    ~attrs:
      [ ("train_samples", Telemetry.Int (Array.length ds.train));
        ("epochs", Telemetry.Int epochs) ]
  @@ fun () ->
  let k = Array.length ds.train.(0).Dataset.features in
  let model = Mlp.create rng ~hidden ~n_inputs:k () in
  let mean, std = normalizer_of ds.train in
  Mlp.set_normalizer model ~mean ~std;
  let adam = Mlp.adam_for ~lr model in
  let n = Array.length ds.train in
  let order = Array.init n (fun i -> i) in
  (* One batch workspace reused across every minibatch of every epoch:
     the whole pretraining loss/gradient path runs on the SoA kernels
     with no per-step allocation beyond the gradient vector. *)
  let ws = Mlp.batch_workspace model ~batch:(min batch_size n) in
  for _epoch = 1 to epochs do
    Rng.shuffle rng order;
    let i = ref 0 in
    while !i < n do
      let bsz = min batch_size (n - !i) in
      let batch =
        Array.init bsz (fun j ->
            let s = ds.train.(order.(!i + j)) in
            (s.Dataset.features, s.Dataset.target))
      in
      ignore (Mlp.train_batch ~ws model adam batch);
      i := !i + bsz
    done
  done;
  let metrics = evaluate model ds.valid in
  Telemetry.Gauge.set (Telemetry.gauge Telemetry.global "cost_model.valid_mse") metrics.mse;
  Telemetry.Gauge.set
    (Telemetry.gauge Telemetry.global "cost_model.valid_spearman")
    metrics.spearman;
  (model, metrics)

let pretrained_for_device ?(cache_dir = "_artifacts") ?(seed = 1234) (device : Device.t) =
  let safe_name =
    String.map (fun c -> if c = ' ' || c = '/' then '_' else c) device.device_name
  in
  let path = Filename.concat cache_dir (Printf.sprintf "costmodel_%s.json" safe_name) in
  match Mlp.load_file path with
  | Ok m ->
    Telemetry.event Telemetry.global "cost_model.cache_hit"
      ~attrs:[ ("device", Telemetry.Str device.device_name) ];
    m
  | Error _ ->
    Telemetry.with_span Telemetry.global "cost_model.train_from_scratch"
      ~attrs:[ ("device", Telemetry.Str device.device_name) ]
    @@ fun () ->
    let rng = Rng.create seed in
    let tasks = Dataset.collect_tasks () in
    let samples = Dataset.generate rng device tasks in
    let ds = Dataset.split rng samples in
    let model, metrics = pretrain rng ds in
    Logs.info (fun m ->
        m "cost model for %s: mse %.4f spearman %.3f (per-task %.3f) on %d samples"
          device.device_name metrics.mse metrics.spearman metrics.per_task_spearman
          metrics.n_samples);
    (try
       if not (Sys.file_exists cache_dir) then Sys.mkdir cache_dir 0o755;
       ignore (Mlp.save_file model path)
     with Sys_error _ -> ());
    model
