type framework = Pytorch | Tensorflow | Tensorrt

let all = [ Pytorch; Tensorflow; Tensorrt ]

let name = function
  | Pytorch -> "PyTorch"
  | Tensorflow -> "TensorFlow"
  | Tensorrt -> "TensorRT"

(* --- expert kernel baseline ------------------------------------------------ *)

let baseline_cache : (string, float) Hashtbl.t = Hashtbl.create 128

let kernel_baseline_ms (device : Device.t) sg =
  let key = device.device_name ^ "|" ^ Compute.workload_key sg in
  match Hashtbl.find_opt baseline_cache key with
  | Some v -> v
  | None ->
    (* Fixed-seed random search: the deterministic stand-in for years of
       manual kernel engineering. *)
    let rng = Rng.create (Hashtbl.hash key) in
    let best = ref Float.infinity in
    (* 60 samples per sketch: libraries ship a fixed menu of kernel variants
       rather than shape-specialised tuning, so the stand-in deliberately
       searches less than the autotuners do. *)
    List.iter
      (fun sched ->
        let pack = Pack.prepare sg sched in
        let prog = Pack.program pack in
        for _ = 1 to 60 do
          match Dataset.sample_valid_point rng pack 30 with
          | None -> ()
          | Some y ->
            let lat = Gpu_model.program_latency_ms device prog (Pack.env_of pack y) in
            if lat < !best then best := lat
        done)
      (Sketch.generate sg);
    Hashtbl.replace baseline_cache key !best;
    !best

(* --- efficiency factors ----------------------------------------------------- *)

(* Relative latency of the framework's kernel vs. the expert baseline for a
   given operator kind: < 1 means the vendor library beats anything in our
   search space (3-D convolution, Section 6.3); > 1 means the library under-
   performs (small layers, depthwise/transposed convolutions, Section 6.1). *)
let pytorch_factor (op : Op.t) =
  let base =
    match op with
    | Conv2d c when c.groups > 1 -> 2.6  (* depthwise: poor library coverage *)
    | Conv2d _ -> 1.55
    | Conv3d _ -> 0.52  (* heavily hand-optimised cuDNN path *)
    | Tconv2d _ -> 2.2
    | Dense _ -> 1.6
    | Batch_matmul _ -> 1.75
    | Softmax _ -> 1.9
    | Maxpool2d _ | Avgpool2d _ | Global_avgpool _ -> 1.35
    | Layer_norm _ | Batch_norm_infer _ -> 1.9
    | Elemwise _ | Binary _ | Bias_add _ | Concat _ -> 1.9
  in
  (* Small layers under-utilise big GPUs with the libraries' generic launch
     configurations (Section 6.1's MobileNet/DCGAN explanation). *)
  let f = Op.flops op in
  if f < 3e7 then base *. 1.5 else if f < 2e8 then base *. 1.2 else base

(* Paper geomeans (Section 1): Felix is 2.2x over PyTorch, 1.7x over
   TensorFlow and 1.5x over TensorRT — TensorFlow/XLA sits between the
   other two, TensorRT is the strongest library. *)
let framework_factor fw op =
  let base = pytorch_factor op in
  match fw with
  | Pytorch -> base
  | Tensorflow -> (
    match op with
    | Op.Conv3d _ -> 0.50  (* XLA's conv3d is on par with cuDNN *)
    | _ -> base *. 0.82)
  | Tensorrt -> (
    match op with
    | Op.Conv3d _ -> 0.58
    | _ -> base *. 0.66)

(* TensorRT builds for Jetson are exceptionally well tuned (the paper's
   asterisk cases: TensorRT slightly beats Felix on ResNet-50 and ViT on
   Xavier NX); general-purpose frameworks lag on edge parts. *)
let device_factor (device : Device.t) fw (op : Op.t) =
  if String.equal device.Device.device_name "Xavier NX" then
    match fw with
    | Tensorrt -> ( match op with Op.Conv2d _ | Op.Dense _ -> 0.82 | _ -> 0.95)
    | Pytorch | Tensorflow -> 1.35
  else 1.0

let dispatch_overhead_ms (device : Device.t) fw =
  let base = match fw with Pytorch -> 0.010 | Tensorflow -> 0.012 | Tensorrt -> 0.002 in
  if String.equal device.Device.device_name "Xavier NX" then base *. 2.5 else base

(* Deterministic per-(framework, device, op-kind) variation, standing in for
   which kernel variant the library dispatcher happens to pick. *)
let variant_jitter fw (device : Device.t) key =
  let h = Hashtbl.hash (name fw, device.device_name, key) in
  1.0 +. (0.06 *. ((float_of_int (h land 0xFF) /. 255.0 *. 2.0) -. 1.0))

let subgraph_latency_ms device fw sg (anchor : Op.t) =
  let base = kernel_baseline_ms device sg in
  base
  *. framework_factor fw anchor
  *. device_factor device fw anchor
  *. variant_jitter fw device (Op.name anchor)
  +. dispatch_overhead_ms device fw

let operator_latency_ms device fw op =
  let sg = Compute.lower ~name:(Op.name op) op in
  subgraph_latency_ms device fw sg op

let supported (device : Device.t) fw net =
  let on_edge = String.equal device.Device.device_name "Xavier NX" in
  match (net, fw) with
  | Workload.Llama, Tensorflow -> false  (* unsupported by HF TF port *)
  | Workload.Llama, Tensorrt -> false  (* segfault, Section 6.1 *)
  | Workload.Llama, Pytorch when on_edge -> false  (* insufficient memory *)
  | Workload.Vit_b32, Tensorflow when on_edge -> false  (* OOM, Section 6.1 *)
  | (Workload.Resnet50 | Workload.Mobilenet_v2 | Workload.R3d_18 | Workload.Dcgan
    | Workload.Vit_b32 | Workload.Llama), _ ->
    (not on_edge) || Workload.fits_on_edge net || fw = Pytorch

let network_latency_ms device fw (g : Graph.t) =
  let tasks = Partition.partition g in
  let total =
    List.fold_left
      (fun acc (task : Partition.task) ->
        let anchor_id = List.hd task.node_ids in
        let anchor = (Graph.node g anchor_id).op in
        acc
        +. (float_of_int task.weight *. subgraph_latency_ms device fw task.subgraph anchor))
      0.0 tasks
  in
  Some total
