(** Off-the-shelf inference framework baselines: PyTorch (TorchInductor),
    TensorFlow (XLA) and TensorRT (paper Section 5).

    The real frameworks dispatch each fused operator to a hand-optimised
    kernel library. The substitute (see DESIGN.md) models a library kernel
    as: the best schedule found by a fixed-seed random search through the
    same GPU simulator (an "expert-tuned" schedule), scaled by a
    per-(framework, operator-kind, device) efficiency factor calibrated to
    the paper's qualitative findings — vendor libraries are excellent at
    3-D convolution, competitive at common 2-D convolutions, and weak on
    small, uncommon or fusion-heavy layers (depthwise and transposed
    convolutions, attention softmax) — plus a per-operator dispatch
    overhead that TensorRT's aggressive fusion mostly eliminates.

    [network_latency_ms] returns [None] for the configurations the paper
    reports as failing: LLaMA on TensorFlow (unsupported) and TensorRT
    (segfault), and any network that does not fit Xavier NX's memory. *)

type framework = Pytorch | Tensorflow | Tensorrt

val all : framework list
val name : framework -> string

val kernel_baseline_ms : Device.t -> Compute.subgraph -> float
(** Latency of the "expert-tuned" kernel for a subgraph on a device: best
    of a fixed-seed random search (cached per device and workload). *)

val operator_latency_ms : Device.t -> framework -> Op.t -> float
(** Single-operator latency under a framework (Figure 9). *)

val network_latency_ms : Device.t -> framework -> Graph.t -> float option
(** Whole-network inference latency (Figure 6). Callers should gate on
    {!supported} first; the paper's failing configurations — LLaMA on
    TensorFlow (unsupported) and TensorRT (segfault), memory-limited
    networks on Xavier NX — are encoded there. *)

val supported : Device.t -> framework -> Workload.network -> bool
