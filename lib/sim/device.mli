(** GPU device models.

    The three platforms of the paper's evaluation (Section 5): NVIDIA A10G
    (server), RTX A5000 (desktop) and Jetson Xavier NX (edge). Parameters
    are taken from the public datasheets; they feed the analytical
    performance model in {!Gpu_model}, which substitutes for the physical
    boards (see DESIGN.md, substitution table). *)

type t = {
  device_name : string;
  sms : int;  (** streaming multiprocessors *)
  fp32_gflops : float;  (** peak single-precision throughput *)
  dram_gbps : float;  (** DRAM bandwidth, GB/s *)
  l2_kb : int;
  shared_kb_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;
  launch_overhead_us : float;  (** per-kernel launch latency *)
  special_ratio : float;  (** SFU throughput relative to fp32 *)
}

val a10g : t
val rtx_a5000 : t
val xavier_nx : t

val all : t list
(** The three paper devices, in server/desktop/edge order. *)

val by_name : string -> t option
(** Exact match on [device_name]. *)

val of_name : string -> (t, string) result
(** Forgiving lookup accepting the paper's spellings (["a10g"],
    ["rtx-a5000"]/["a5000"], ["xavier-nx"]), case-insensitively. The error
    message lists the known names. This is the primary device-lookup API;
    [Felix.cuda] is a thin raising wrapper over it. *)

val unknown_device_message : string -> string
(** The exact error text [of_name] returns for an unknown name. [Felix.cuda]
    raises [Invalid_argument] with this same text, so the result and the
    raising APIs agree verbatim. *)
