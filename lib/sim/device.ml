type t = {
  device_name : string;
  sms : int;
  fp32_gflops : float;
  dram_gbps : float;
  l2_kb : int;
  shared_kb_per_sm : int;
  max_threads_per_sm : int;
  max_blocks_per_sm : int;
  regs_per_sm : int;
  launch_overhead_us : float;
  special_ratio : float;
}

let a10g =
  { device_name = "A10G"; sms = 80; fp32_gflops = 31_200.0; dram_gbps = 600.0; l2_kb = 6144;
    shared_kb_per_sm = 100; max_threads_per_sm = 1536; max_blocks_per_sm = 16;
    regs_per_sm = 65536; launch_overhead_us = 4.0; special_ratio = 0.25 }

let rtx_a5000 =
  { device_name = "RTX A5000"; sms = 64; fp32_gflops = 27_800.0; dram_gbps = 768.0;
    l2_kb = 6144; shared_kb_per_sm = 100; max_threads_per_sm = 1536; max_blocks_per_sm = 16;
    regs_per_sm = 65536; launch_overhead_us = 4.0; special_ratio = 0.25 }

let xavier_nx =
  { device_name = "Xavier NX"; sms = 6; fp32_gflops = 844.0; dram_gbps = 59.7; l2_kb = 512;
    shared_kb_per_sm = 96; max_threads_per_sm = 2048; max_blocks_per_sm = 32;
    regs_per_sm = 65536; launch_overhead_us = 12.0; special_ratio = 0.25 }

let all = [ a10g; rtx_a5000; xavier_nx ]

let by_name name = List.find_opt (fun d -> String.equal d.device_name name) all

let unknown_device_message name =
  Printf.sprintf "unknown device %S (known: %s)" name
    (String.concat ", " [ "a10g"; "rtx-a5000"; "xavier-nx" ])

let of_name name =
  match String.lowercase_ascii name with
  | "a10g" -> Ok a10g
  | "a5000" | "rtx-a5000" | "rtx_a5000" | "rtx a5000" -> Ok rtx_a5000
  | "xavier-nx" | "xavier_nx" | "xaviernx" | "xavier nx" -> Ok xavier_nx
  | _ -> Error (unknown_device_message name)
