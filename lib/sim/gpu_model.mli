(** Analytical GPU performance model — the substitute for hardware
    measurement (see DESIGN.md).

    Given a concrete scheduled program (a symbolic program plus an integer
    assignment of its schedule variables), the model computes a kernel
    latency from first principles:

    - {e occupancy}: resident blocks per SM limited by threads, shared
      memory and an estimated register budget; partial warps waste lanes;
    - {e waves}: the grid executes in waves of [resident * SMs] blocks, and
      a partially-filled last wave wastes time (tail effect);
    - {e compute roofline}: flops at peak throughput scaled by an issue
      efficiency that grows with instruction-level parallelism (unrolling,
      vectorisation) and occupancy;
    - {e memory roofline}: DRAM traffic from per-buffer footprints, with
      cache-hit modelling for repeated accesses, an uncoalescing penalty
      for non-contiguous loads, and cooperative shared-memory staging
      (which also pays bank-conflict and synchronisation costs);
    - a per-kernel launch overhead and a deterministic ±2% "silicon"
      jitter keyed on the schedule, so that equal schedules always measure
      equal and the cost model cannot be exactly right.

    The model is intentionally richer than the 82 extracted features (it
    sees exact divisibility, register pressure and cache behaviour), which
    keeps the learned cost model imperfect — as on real hardware. *)

val kernel_latency_ms : Device.t -> Loop_ir.scheduled_stage -> Eval.env -> float
(** Latency of one kernel stage under the variable assignment. *)

val program_latency_ms : Device.t -> Loop_ir.t -> Eval.env -> float
(** Sum of the program's kernel latencies plus launch overheads. *)

val measure_ms :
  ?noise:float -> Rng.t -> Device.t -> Loop_ir.t -> Eval.env -> float
(** Empirical measurement: {!program_latency_ms} with multiplicative
    measurement noise of relative magnitude [noise] (default 0.015,
    matching run-to-run variation of the repeat-until-100ms protocol in
    Section 5). Equivalent to
    [finish_measure_ms rng (measure_base_ms dev p env)]. *)

val measure_base_ms :
  ?cache:(string, float) Runtime.Lru.t ->
  ?key:string ->
  Device.t ->
  Loop_ir.t ->
  Eval.env ->
  float
(** The noiseless half of {!measure_ms}: deterministic, RNG-free, safe to
    run on any domain. When both [cache] and [key] are given the latency is
    memoised under [key] — callers must make the key canonical over
    everything the latency depends on (device, workload, schedule
    assignment). Counts one [sim.measurements] regardless of cache hits. *)

val default_noise : float
(** Relative magnitude of simulated measurement noise (0.015) — exported
    so measurement-layer tests and benches can reproduce the inline path
    without hard-coding the constant. *)

val finish_measure_ms : ?noise:float -> Rng.t -> float -> float
(** The noise half of {!measure_ms}: draws one gaussian from [rng] when the
    base latency is finite (infinite bases are counted invalid and returned
    unchanged). Must be called in candidate order on the tuning RNG to keep
    parallel runs bit-identical to sequential ones. *)
