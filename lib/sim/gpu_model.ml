let ev env e = Eval.eval env e

(* Deterministic per-schedule jitter in [-amp, +amp], keyed on a string. *)
let jitter ~amp key =
  let h = Hashtbl.hash key in
  let u = float_of_int (h land 0xFFFF) /. 65535.0 in
  amp *. ((2.0 *. u) -. 1.0)

let ceil_div a b = (a + b - 1) / b

let estimated_registers ~serial ~vec ~red =
  (* Accumulators for the register tile, plus index/address registers. *)
  let acc = min 256.0 serial in
  24.0 +. (2.0 *. acc) +. (4.0 *. vec) +. min 16.0 (red /. 64.0)

let kernel_latency_ms (dev : Device.t) (ss : Loop_ir.scheduled_stage) env =
  let grid = ev env (Loop_ir.grid_size ss) in
  let tpb = ev env (Loop_ir.block_threads ss) in
  let serial = ev env (Loop_ir.serial_spatial ss) in
  let red = ev env (Loop_ir.reduce_iterations ss) in
  let unroll = ev env (Loop_ir.unroll_step ss) in
  let vec = ev env (Loop_ir.vector_width ss) in
  let shared_b = ev env (Loop_ir.shared_bytes ss) in
  if grid < 1.0 || tpb < 1.0 then Float.infinity
  else if tpb > 1024.0 then Float.infinity
  else if shared_b > float_of_int (dev.shared_kb_per_sm * 1024) then Float.infinity
  else begin
    (* --- occupancy ------------------------------------------------------ *)
    let warps = ceil_div (int_of_float tpb) 32 in
    let tpb_eff = float_of_int (warps * 32) in
    let regs = estimated_registers ~serial ~vec ~red in
    let spill = regs > 255.0 in
    let regs = min regs 255.0 in
    let by_threads = int_of_float (float_of_int dev.max_threads_per_sm /. tpb_eff) in
    let by_shared =
      if shared_b <= 0.0 then dev.max_blocks_per_sm
      else int_of_float (float_of_int (dev.shared_kb_per_sm * 1024) /. shared_b)
    in
    let by_regs = int_of_float (float_of_int dev.regs_per_sm /. (regs *. tpb_eff)) in
    let resident = max 1 (min (min by_threads by_shared) (min by_regs dev.max_blocks_per_sm)) in
    let wave_blocks = resident * dev.sms in
    let waves = ceil_div (int_of_float grid) wave_blocks in
    (* Blocks land one per SM first: a wave of b blocks keeps min(SMs, b)
       SMs busy (averaged over waves, so a partially-filled last wave lowers
       the figure), with ceil(b / busy) blocks actually resident per busy
       SM — small grids therefore run at single-block occupancy. *)
    let blocks_per_wave = grid /. float_of_int waves in
    let busy_sms = min (float_of_int dev.sms) blocks_per_wave in
    let actual_resident =
      max 1 (min resident (int_of_float (ceil (blocks_per_wave /. busy_sms))))
    in
    let resident_threads =
      min (float_of_int dev.max_threads_per_sm) (float_of_int actual_resident *. tpb_eff)
    in
    let occ = resident_threads /. float_of_int dev.max_threads_per_sm in
    (* --- compute roofline ------------------------------------------------ *)
    let total_iters = grid *. tpb *. serial *. red in
    let flops_iter = Loop_ir.flops_per_iteration ss in
    let total_flops = total_iters *. flops_iter in
    let eff_unroll = min unroll (serial *. red) in
    let ilp_factor =
      let f = 0.45 +. (0.4 *. min 1.0 (log (1.0 +. eff_unroll) /. (6.0 *. log 2.0))) in
      if unroll > 256.0 then f *. 0.92 else f
    in
    let warp_eff = tpb /. tpb_eff in
    let occ_factor = occ /. (occ +. 0.18) in
    let issue_eff = warp_eff *. ilp_factor *. occ_factor *. 1.18 in
    let issue_eff = if spill then issue_eff *. 0.6 else issue_eff in
    let chip_gflops = dev.fp32_gflops *. busy_sms /. float_of_int dev.sms in
    let special =
      float_of_int ss.stage.counts.fspecial *. total_iters
      /. (chip_gflops *. 1e9 *. dev.special_ratio)
    in
    let t_comp = (total_flops /. (chip_gflops *. 1e9 *. issue_eff)) +. special in
    (* --- memory roofline -------------------------------------------------- *)
    let issued_block = tpb *. serial *. red in
    let active_blocks = min grid (float_of_int wave_blocks) in
    let l2_bytes = float_of_int (dev.l2_kb * 1024) in
    let l2_share = l2_bytes /. max 1.0 active_blocks in
    let read_bytes =
      (* Grid-level DRAM traffic per input buffer: every byte of the buffer
         must be fetched at least once (compulsory misses); re-fetches — the
         same tile requested by several blocks, or repeated accesses inside a
         block — are filtered by L2 (shared across blocks) and L1. *)
      List.fold_left
        (fun acc access ->
          let unique = ev env (Loop_ir.access_footprint ss Loop_ir.Block_scope access) *. 4.0 in
          let buffer_bytes =
            float_of_int
              (List.fold_left ( * ) 1 access.Compute.buffer.Compute.shape
              * Dtype.size_bytes access.Compute.buffer.Compute.dtype)
          in
          let contiguous = Loop_ir.access_contiguous ss access in
          (* Cooperative shared-memory staging fetches tiles with coalesced
             bursts regardless of the compute loop's access order. *)
          let coalesce =
            if Loop_ir.uses_shared_cache ss || contiguous then 1.0
            else 3.0 /. max 1.0 (min vec 4.0)
          in
          let gross =
            if Loop_ir.uses_shared_cache ss then grid *. unique
            else begin
              let l2_hit = Stats.clamp ~lo:0.0 ~hi:0.95 (l2_share /. max 1.0 unique) in
              let l1_hit = if contiguous then 0.7 else 0.4 in
              let repeats = max 0.0 (issued_block -. (unique /. 4.0)) *. 4.0 in
              grid *. (unique +. (repeats *. (1.0 -. l2_hit) *. (1.0 -. l1_hit) *. 0.25))
            end
          in
          let compulsory = min gross buffer_bytes in
          let cross_block_hit = Stats.clamp ~lo:0.0 ~hi:0.98 (l2_bytes /. max 1.0 buffer_bytes) in
          let bytes = compulsory +. ((gross -. compulsory) *. (1.0 -. cross_block_hit)) in
          acc +. (bytes *. coalesce))
        0.0 ss.stage.reads
    in
    let store_bytes = grid *. tpb *. serial *. 4.0 in
    let dram_bytes = read_bytes +. store_bytes in
    let threads_total = active_blocks *. tpb in
    let mem_eff = threads_total /. (threads_total +. (256.0 *. float_of_int dev.sms)) in
    let t_mem = dram_bytes /. (dev.dram_gbps *. 1e9 *. max 0.05 mem_eff) in
    (* --- shared-memory staging ------------------------------------------- *)
    let t_shared, t_sync =
      if Loop_ir.uses_shared_cache ss && shared_b > 0.0 then begin
        let shared_traffic = grid *. issued_block *. 4.0 *. float_of_int (List.length ss.stage.reads) in
        let shared_bw = dev.dram_gbps *. 1e9 *. 14.0 in
        let conflict = 1.0 +. (0.3 *. abs_float (jitter ~amp:1.0 (ss.stage.stage_name, "bank"))) in
        let reduce_inner =
          match ss.plan with
          | Schedule.Multi_tile { reduce_split; _ } ->
            Array.fold_left (fun acc e -> acc *. ev env e) 1.0 reduce_split
          | Schedule.Inlined | Schedule.Simple_bind _ -> 1.0
        in
        let n_sync = red /. max 1.0 reduce_inner in
        let sync_cost = float_of_int waves *. n_sync *. 1.2e-7 in
        (shared_traffic *. conflict /. shared_bw, sync_cost)
      end
      else (0.0, 0.0)
    in
    (* --- combine ----------------------------------------------------------- *)
    let t_body = max t_comp t_mem +. (0.3 *. min t_comp t_mem) in
    let t = t_body +. t_shared +. t_sync +. (dev.launch_overhead_us *. 1e-6) in
    let key = (dev.device_name, ss.stage.stage_name, int_of_float (grid *. 1000.0 +. tpb), int_of_float (serial *. 100.0 +. (red *. 7.0) +. unroll)) in
    let t = t *. (1.0 +. jitter ~amp:0.02 key) in
    t *. 1000.0
  end

let program_latency_ms dev (p : Loop_ir.t) env =
  Array.fold_left (fun acc ss -> acc +. kernel_latency_ms dev ss env) 0.0 p.Loop_ir.stages

let c_measurements = Telemetry.counter Telemetry.global "sim.measurements"
let c_invalid = Telemetry.counter Telemetry.global "sim.invalid_schedules"
let c_cache_hits = Telemetry.counter Telemetry.global "sim.cache_hits"
let c_cache_misses = Telemetry.counter Telemetry.global "sim.cache_misses"
let h_measured = Telemetry.histogram Telemetry.global "sim.measured_ms"

(* Measurement is split in two so the expensive, noiseless half can run on
   any domain (and be memoised), while the noise draw stays on the caller's
   RNG stream in candidate order — composing the halves consumes exactly the
   random values [measure_ms] would. *)

let measure_base_ms ?cache ?key dev p env =
  Telemetry.Counter.incr c_measurements;
  let compute () = program_latency_ms dev p env in
  match (cache, key) with
  | Some cache, Some key ->
    (match Runtime.Lru.find_opt cache key with
    | Some base ->
      Telemetry.Counter.incr c_cache_hits;
      base
    | None ->
      Telemetry.Counter.incr c_cache_misses;
      let base = compute () in
      Runtime.Lru.add cache key base;
      base)
  | _ -> compute ()

let default_noise = 0.015

let finish_measure_ms ?(noise = default_noise) rng base =
  if Float.is_finite base then begin
    let lat = base *. (1.0 +. (noise *. Rng.gaussian rng)) in
    Telemetry.Histogram.observe h_measured lat;
    lat
  end
  else begin
    Telemetry.Counter.incr c_invalid;
    base
  end

let measure_ms ?noise rng dev p env =
  finish_measure_ms ?noise rng (measure_base_ms dev p env)
