(** Differentiable objective ingredients for one symbolic program.

    [prepare] assembles everything Algorithm 1 needs for a (subgraph,
    symbolic schedule) pair:

    + extract the 82 raw feature formulas ({!Extract});
    + rewrite non-differentiable operators to their smooth forms
      ({!Smooth}, paper Section 3.3);
    + apply the gradient-stability transform: [log(1 + f)] on each feature
      and the substitution [x = e^y] on every schedule variable, so the
      optimiser works in log-space [y];
    + compile features and constraint-penalty margins into reverse-mode
      tapes ({!Autodiff.Tape});
    + keep the divisibility groups for post-optimisation factor rounding.

    All tape inputs are the log-space variables [y] in the order of
    {!var_names}. *)

type t

val prepare : ?width:float -> Compute.subgraph -> Schedule.t -> t
(** [width] is the smoothing-kernel width of Section 3.3 (default 1.0);
    exposed for the ablation benchmarks. *)

val prepare_cached : ?width:float -> Compute.subgraph -> Schedule.t -> t
(** {!prepare} memoised in a process-wide LRU keyed by
    [Compute.workload_key], the sketch name and [width]. Packs are
    immutable, so cached instances are safe to share across domains and
    tuning runs; equal workloads (e.g. repeated operators in a network)
    compile their tapes once. *)

val schedule : t -> Schedule.t
val program : t -> Loop_ir.t

val var_names : t -> string array
(** Order of the tape inputs. *)

val num_vars : t -> int

val bounds_log : t -> (float * float) array
(** Per-variable [ln lo, ln hi] box; initial seeds are drawn inside it. *)

val features_at : t -> float array -> float array
(** Transformed (smoothed, log-scaled) feature vector at [y]; length 82. *)

val features_batch : ?runtime:Runtime.t -> t -> float array array -> float array array
(** [features_at] over a batch of points, fanned out across the runtime's
    domains when one is given (tape evaluation is pure, so the result is
    identical to the sequential map). *)

val features_vjp : t -> float array -> float array -> float array * float array
(** [(features, dy)] where [dy] is the gradient of [sum_k adj_k * feat_k]
    with respect to [y]. *)

val penalty_margins : t -> float array -> float array
(** Smoothed constraint margins g_r(y); the schedule is feasible when all
    are <= 0. *)

val penalty_value_grad : t -> float array -> float * float array
(** [(sum_r max(g_r, 0)^2, gradient)] — the penalty term of Equation 4
    (without the lambda factor). *)

val num_penalties : t -> int

val round_to_valid : t -> float array -> float array option
(** Round log-space values to the nearest divisor assignment (Section 3.3's
    factor rounding) and check the original integer constraints; [None] if
    the rounded point is infeasible. The result is a valid concrete
    schedule's log-space image. *)

val assignment : t -> float array -> (string * int) list
(** Integer variable assignment corresponding to (rounded) [y]. *)

val env_of : t -> float array -> Eval.env
(** Concrete evaluation environment [x = e^y] for the raw program
    expressions (used by the hardware simulator). *)

val schedule_key : t -> float array -> string
(** Stable identity of the concrete schedule at rounded [y] (for
    deduplicating measurements). *)
