(** Differentiable objective ingredients for one symbolic program.

    [prepare] assembles everything Algorithm 1 needs for a (subgraph,
    symbolic schedule) pair:

    + extract the 82 raw feature formulas ({!Extract});
    + rewrite non-differentiable operators to their smooth forms
      ({!Smooth}, paper Section 3.3);
    + apply the gradient-stability transform: [log(1 + f)] on each feature
      and the substitution [x = e^y] on every schedule variable, so the
      optimiser works in log-space [y];
    + compile features and constraint-penalty margins into reverse-mode
      tapes ({!Autodiff.Tape});
    + keep the divisibility groups for post-optimisation factor rounding.

    All tape inputs are the log-space variables [y] in the order of
    {!var_names}. *)

type t

val prepare :
  ?width:float ->
  ?optimize:bool ->
  ?cache_dir:string ->
  Compute.subgraph ->
  Schedule.t ->
  t
(** [width] is the smoothing-kernel width of Section 3.3 (default 1.0);
    exposed for the ablation benchmarks. [optimize] (default [true]) runs
    the bit-exact tape optimiser on the compiled tapes and reports the
    before/after slot counts on the [features.tape_slots_{pre,post}]
    telemetry counters; disabling it reproduces the raw tapes (same
    results bitwise, more instructions — kept for benchmark baselines).

    [cache_dir] (default {!disk_cache}, i.e. the [FELIX_PACK_CACHE]
    environment variable) enables the persistent compilation cache: the
    compiled tapes and their superop plans ({!Autodiff.Tape.compile_plan})
    are stored content-addressed under the directory, keyed
    by the subgraph's canonical workload key, the schedule fingerprint,
    [width]/[optimize] (exact bits) and the pack schema version. A hit
    skips the rewrite/compile pipeline and is bitwise-identical to a fresh
    compile; a corrupt or foreign entry is recompiled (and rewritten),
    never a crash. Wall-clock per call is observed on the
    [felix.prepare_ms] telemetry histogram either way. *)

val prepare_cached :
  ?width:float ->
  ?optimize:bool ->
  ?cache_dir:string ->
  Compute.subgraph ->
  Schedule.t ->
  t
(** {!prepare} memoised in a process-wide LRU keyed by
    [Compute.workload_key], the sketch name, [width] (exact bits) and
    [optimize]. Packs are immutable, so cached instances are safe to share
    across domains and tuning runs; equal workloads (e.g. repeated
    operators in a network) compile their tapes once. LRU misses fall
    through to {!prepare} (and hence the disk cache, when enabled). *)

val prepare_all :
  ?width:float ->
  ?optimize:bool ->
  ?cache_dir:string ->
  ?runtime:Runtime.t ->
  (Compute.subgraph * Schedule.t) list ->
  t list
(** Batch {!prepare_cached} over independent (subgraph, sketch) pairs, in
    order. With [runtime], cold compilations fan out across the pool's
    domains (the rewriter and simplifier keep per-domain state, so this is
    safe); results are position-stable and bitwise-identical to the
    sequential path. *)

val clear_memory_cache : unit -> unit
(** Drop every entry of the process-wide LRU (disk entries are untouched).
    Tests use this to simulate a fresh process against a warm disk
    cache. *)

(** {2 Persistent disk cache} *)

val set_disk_cache : string option -> unit
(** Set (or disable, with [None]) the process-default cache directory used
    when [?cache_dir] is not passed. Initialised from the
    [FELIX_PACK_CACHE] environment variable. *)

val disk_cache : unit -> string option

val disk_counters : unit -> (string * int) list
(** Process-lifetime disk-cache activity:
    [["disk_hits"; "disk_misses"; "disk_writes"; "disk_errors"]]. The same
    numbers are exported as [features.pack_cache_disk_*] telemetry
    counters when the global registry is enabled. *)

val disk_cache_stats : string -> (string * int) list
(** [["entries"; "bytes"]] for the cache entries currently in a
    directory. A missing directory counts as empty. *)

val clear_disk_cache : string -> int
(** Delete every cache entry in the directory (only files matching the
    [pack-*.json] naming scheme); returns how many were removed. *)

val digest : t -> string
(** Stable hex digest of the pack's observable content (serialized tapes,
    variable order, bounds bits, divisibility groups). Two packs with
    equal digests evaluate bitwise-identically; the benchmarks and tests
    use this to prove cold, parallel and disk-warm compilations equal. *)

val schedule : t -> Schedule.t
val program : t -> Loop_ir.t

val var_names : t -> string array
(** Order of the tape inputs. *)

val num_vars : t -> int

val bounds_log : t -> (float * float) array
(** Per-variable [ln lo, ln hi] box; initial seeds are drawn inside it. *)

val features_at : t -> float array -> float array
(** Transformed (smoothed, log-scaled) feature vector at [y]; length 82. *)

val features_vjp : t -> float array -> float array -> float array * float array
(** [(features, dy)] where [dy] is the gradient of [sum_k adj_k * feat_k]
    with respect to [y]. *)

val penalty_margins : t -> float array -> float array
(** Smoothed constraint margins g_r(y); the schedule is feasible when all
    are <= 0. *)

val penalty_value_grad : t -> float array -> float * float array
(** [(sum_r max(g_r, 0)^2, gradient)] — the penalty term of Equation 4
    (without the lambda factor). One forward + one backward sweep. *)

val penalty_vjp : t -> float array -> float array -> float array * float array
(** [(margins, dy)] for an explicit margin adjoint — the building block of
    {!penalty_value_grad}, exposed so callers can reproduce the legacy
    (pre-fusion) objective composition exactly. *)

val num_penalties : t -> int

val feature_plan : t -> Autodiff.Tape.Plan.t
(** The compiled superop plan of the feature tape (fusion statistics for
    the bench harness; the batched workspaces execute it by default). *)

val penalty_plan : t -> Autodiff.Tape.Plan.t

(** {2 Fused-kernel workspaces}

    A [workspace] owns the tape value/adjoint buffers for this pack's
    feature and penalty tapes. Ownership rules: one workspace per
    concurrent evaluator (never shared across domains mid-call); arrays
    returned by [features_forward] are workspace-owned and valid until the
    next call on the same workspace; reuse across points/calls is safe
    because every buffer is fully rewritten before it is read. *)

type workspace

val workspace : t -> workspace

val features_forward : t -> workspace -> float array -> float array
(** As {!features_at}, but allocation-free: runs the forward sweep into
    the workspace and returns the workspace-owned feature vector. The
    intermediate values are retained for {!features_backward}. *)

val features_backward : t -> workspace -> float array -> float array -> unit
(** [features_backward t ws adj grad] runs one reverse sweep against the
    values of the last {!features_forward} on [ws], overwriting [grad]
    with the y-gradient of [sum_k adj_k * feat_k]. Together with
    {!features_forward} this is {!features_vjp} without the second
    forward pass or any allocation. *)

val penalty_value_grad_into : t -> workspace -> float array -> float array -> float
(** [penalty_value_grad_into t ws y grad] is {!penalty_value_grad} with
    zero allocation: overwrites [grad] and returns the penalty value. *)

(** {2 Batched (structure-of-arrays) workspaces}

    A [batch_workspace] runs both tapes over up to its capacity of
    candidates in lockstep; lane [l] of every batched sweep is
    bitwise-identical to the scalar workspace kernel on that candidate
    alone, at any batch size. All matrices are lane-major rows
    ([a.(l * k + i)] is component [i] of candidate [l]). Same ownership
    rules as {!workspace}.

    By default the batched sweeps execute the pack's compiled superop
    plans ({!Autodiff.Tape.compile_plan}) through the strict-IEEE C
    kernels; {!set_plan_execution} (or the [FELIX_NO_TAPE_PLAN]
    environment variable) falls back to the interpreted tape sweeps. The
    strategy is chosen when a workspace is created and both are
    bitwise-identical lane for lane, so the toggle is unobservable in
    results — it exists for differential testing and benchmarking. *)

val set_plan_execution : bool -> unit
(** Select compiled-plan ([true], the default) or interpreted batched
    execution for workspaces created afterwards. Initialised to [false]
    when [FELIX_NO_TAPE_PLAN] is [1]/[true]/[yes]. *)

val using_plan_execution : unit -> bool

type batch_workspace

val batch_workspace : t -> batch:int -> batch_workspace
(** Buffers for up to [batch] lanes ([batch >= 1]); bound to the current
    {!using_plan_execution} strategy. *)

val batch_capacity : batch_workspace -> int

val batch_workspace_planned : batch_workspace -> bool
(** Whether this workspace executes the compiled plans (for tests and the
    bench harness). *)

val features_forward_batch :
  t -> batch_workspace -> batch:int -> float array -> float array
(** Lockstep {!features_forward} over the lane-major point rows of [ys];
    returns the workspace-owned [batch * 82] lane-major feature matrix
    (do not retain). Intermediate values are kept for
    {!features_backward_batch}. *)

val features_backward_batch :
  t -> batch_workspace -> batch:int -> float array -> float array -> unit
(** [features_backward_batch t bws ~batch adj grads] seeds each lane's
    feature adjoints from the lane-major rows of [adj] and overwrites the
    first [batch] lane-major rows of [grads] with the y-gradients. *)

val penalty_value_grad_batch_into :
  t ->
  batch_workspace ->
  batch:int ->
  float array ->
  grads:float array ->
  values:float array ->
  unit
(** Lockstep {!penalty_value_grad_into}: per lane, overwrites row [l] of
    [grads] with the penalty gradient and [values.(l)] with the penalty
    value. *)

val cache_stats : unit -> (string * int) list
(** Counters of the process-wide {!prepare_cached} LRU:
    [["hits"; "misses"; "evictions"; "entries"]]. The same numbers are
    exported through the [features.pack_cache_*] telemetry instruments. *)

val round_to_valid : t -> float array -> float array option
(** Round log-space values to the nearest divisor assignment (Section 3.3's
    factor rounding) and check the original integer constraints; [None] if
    the rounded point is infeasible. The result is a valid concrete
    schedule's log-space image. *)

val assignment : t -> float array -> (string * int) list
(** Integer variable assignment corresponding to (rounded) [y]. *)

val env_of : t -> float array -> Eval.env
(** Concrete evaluation environment [x = e^y] for the raw program
    expressions (used by the hardware simulator). *)

val schedule_key : t -> float array -> string
(** Stable identity of the concrete schedule at rounded [y] (for
    deduplicating measurements). *)
