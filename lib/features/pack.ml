type t = {
  sched : Schedule.t;
  prog : Loop_ir.t;
  names : string array;
  bounds : (float * float) array;  (* log-space box *)
  feature_tape : Autodiff.Tape.t;
  penalty_tape : Autodiff.Tape.t;
  feature_plan : Autodiff.Tape.Plan.t;  (* compiled superop plans of the *)
  penalty_plan : Autodiff.Tape.Plan.t;  (* two tapes, compiled once here *)
  n_penalties : int;
  div_groups : (int * int list) list;  (* extent, var indices *)
  raw_constraints : Expr.cond list;
}

let schedule t = t.sched
let program t = t.prog
let var_names t = t.names
let num_vars t = Array.length t.names
let bounds_log t = t.bounds
let num_penalties t = t.n_penalties
let feature_plan t = t.feature_plan
let penalty_plan t = t.penalty_plan

(* x = e^y: replace every schedule variable by exp of itself; tape inputs
   are then interpreted as log-space values. *)
let exp_subst vars e =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v ()) vars;
  Expr.subst (fun v -> if Hashtbl.mem tbl v then Some (Expr.exp_ (Expr.var v)) else None) e

(* Constraint conditions to margin expressions g with "holds iff g <= 0".
   Both sides of every sketch constraint are positive (sizes, products,
   byte counts), so [a <= b] is rewritten as [log(1+a) - log(1+b) <= 0]:
   the margin of a violated shared-memory constraint is then of the same
   order as that of a violated thread bound, keeping the penalty gradients
   of Equation 4 well-conditioned. *)
let rec margins_of_cond (c : Expr.cond) : Expr.t list =
  let l1p e = Expr.log_ (Expr.add Expr.one e) in
  match c with
  | Cmp (Le, a, b) | Cmp (Lt, a, b) -> [ Expr.sub (l1p a) (l1p b) ]
  | Cmp (Ge, a, b) | Cmp (Gt, a, b) -> [ Expr.sub (l1p b) (l1p a) ]
  | Cmp (Eq, a, b) -> [ Expr.abs_ (Expr.sub (l1p a) (l1p b)) ]
  | Cmp (Ne, _, _) -> []
  | And (c1, c2) -> margins_of_cond c1 @ margins_of_cond c2
  | Or (c1, c2) -> (
    (* or: at least one margin <= 0, i.e. min of margins <= 0 *)
    match (margins_of_cond c1, margins_of_cond c2) with
    | [ m1 ], [ m2 ] -> [ Expr.min_ m1 m2 ]
    | _ -> [])
  | Not _ | Bconst _ -> []

let c_slots_pre = Telemetry.counter Telemetry.global "features.tape_slots_pre"
let c_slots_post = Telemetry.counter Telemetry.global "features.tape_slots_post"

(* --- compiled superop plans -------------------------------------------------

   Every pack eagerly carries the compiled superop plans of its two tapes
   (Autodiff.Tape.compile_plan): descent workspaces pick the plan or the
   interpreter at creation time via the toggle below, and plans travel with
   the tapes through both caches so a warm hit never re-runs the plan
   compiler. The toggle changes execution strategy only — results are
   bitwise-identical either way — so pack digests and tuner checkpoints do
   not depend on it. *)

let plan_execution =
  ref
    (match Sys.getenv_opt "FELIX_NO_TAPE_PLAN" with
    | Some ("1" | "true" | "yes") -> false
    | Some _ | None -> true)

let set_plan_execution b = plan_execution := b
let using_plan_execution () = !plan_execution

let h_tape_compile_ms = Telemetry.histogram Telemetry.global "felix.tape_compile_ms"
let c_superops_pre = Telemetry.counter Telemetry.global "features.tape_superops_pre"
let c_superops_post = Telemetry.counter Telemetry.global "features.tape_superops_post"

let compile_plan_timed tape =
  let t0 = Telemetry.now_s Telemetry.global in
  let plan = Autodiff.Tape.compile_plan tape in
  Telemetry.Histogram.observe h_tape_compile_ms
    ((Telemetry.now_s Telemetry.global -. t0) *. 1000.0);
  Telemetry.Counter.incr ~by:(Autodiff.Tape.Plan.source_ops plan) c_superops_pre;
  Telemetry.Counter.incr ~by:(Autodiff.Tape.Plan.superops plan) c_superops_post;
  plan

(* The cheap, deterministic part of a pack: everything recomputable from
   (subgraph, schedule) without touching the rewriter or the tape compiler.
   Both the compile path and the disk-cache load path start here. *)
type skeleton = {
  sk_prog : Loop_ir.t;
  sk_names : string array;
  sk_bounds : (float * float) array;
  sk_div_groups : (int * int list) list;
}

let skeleton sg sched =
  let prog = Loop_ir.apply sg sched in
  let names = Array.of_list (Schedule.var_names sched) in
  let bounds =
    Array.of_list
      (List.map (fun (v : Schedule.var) -> (log v.lo, log v.hi)) sched.Schedule.vars)
  in
  let index_of name =
    let rec go i = if names.(i) = name then i else go (i + 1) in
    go 0
  in
  let div_groups =
    List.map
      (fun (extent, vars) -> (extent, List.map index_of vars))
      sched.Schedule.div_groups
  in
  { sk_prog = prog; sk_names = names; sk_bounds = bounds; sk_div_groups = div_groups }

let compile_pack ~width ~optimize sg sched sk =
  Telemetry.with_span Telemetry.global "pack.compile"
    ~attrs:
      [ ("subgraph", Telemetry.Str sg.Compute.sg_name);
        ("sketch", Telemetry.Str sched.Schedule.sched_name) ]
  @@ fun () ->
  Telemetry.Counter.incr (Telemetry.counter Telemetry.global "features.tapes_compiled");
  let names = sk.sk_names in
  let name_list = Array.to_list names in
  let transform e =
    e
    |> Smooth.smooth ~width
    |> exp_subst name_list
    |> fun e' -> Expr.log_ (Expr.add Expr.one e')
  in
  (* Tapes are compiled raw, then (unless [optimize:false]) run through the
     bit-exact tape optimiser; the before/after slot counts feed the
     features.tape_slots_{pre,post} telemetry counters. *)
  let optimize_tape tape =
    if not optimize then tape
    else begin
      let tape', report = Autodiff.Tape.optimize_report tape in
      Telemetry.Counter.incr ~by:report.Autodiff.Tape.slots_pre c_slots_pre;
      Telemetry.Counter.incr ~by:report.Autodiff.Tape.slots_post c_slots_post;
      tape'
    end
  in
  let features = Extract.extract sk.sk_prog |> Array.map transform |> Array.to_list in
  let feature_tape =
    optimize_tape (Autodiff.Tape.compile ~optimize:false ~inputs:name_list features)
  in
  (* The x = e^y substitution and the simplify pass run as one fused walk
     (Simplify.simplify_subst): bit-identical to substituting first and
     simplifying after, one tree traversal instead of two. *)
  let subst_env =
    let tbl = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace tbl v ()) name_list;
    fun v -> if Hashtbl.mem tbl v then Some (Expr.exp_ (Expr.var v)) else None
  in
  let margins =
    List.concat_map margins_of_cond sched.Schedule.constraints
    |> List.map (fun g -> Simplify.simplify_subst subst_env (Smooth.smooth ~width g))
  in
  let penalty_tape =
    optimize_tape (Autodiff.Tape.compile ~optimize:false ~inputs:name_list margins)
  in
  let feature_plan = compile_plan_timed feature_tape in
  let penalty_plan = compile_plan_timed penalty_tape in
  { sched; prog = sk.sk_prog; names; bounds = sk.sk_bounds; feature_tape; penalty_tape;
    feature_plan; penalty_plan; n_penalties = List.length margins;
    div_groups = sk.sk_div_groups; raw_constraints = sched.Schedule.constraints }

(* --- persistent (disk) cache ------------------------------------------------

   Compiled packs are content-addressed on disk: the key digests the
   subgraph's canonical form, the schedule's fingerprint (name, variable
   boxes, divisibility groups, constraint count), the smoothing width and
   optimize flag (both part of the compiled artifact's semantics) and the
   schema version below. The value is only what is expensive to recompute —
   the two compiled tapes, floats as IEEE-754 bit strings — wrapped in the
   store's versioned Artifact envelope and written atomically (temp file +
   fsync + rename); the skeleton is rebuilt from the schedule on load, so a
   cache hit is bitwise-identical to a fresh compile. Any unreadable or
   invalid entry falls back to recompiling (and rewriting the entry), never
   to a crash. Concurrent writers of one key race benignly: they write
   identical bytes and the rename is atomic. *)

let pack_artifact_kind = "felix-pack"

(* Bump whenever the pack pipeline changes results or the payload layout
   changes: the version lives in the artifact envelope AND the key digest,
   so stale entries are simply never addressed again. *)
let pack_schema_version = 2

let c_disk_hits = Telemetry.counter Telemetry.global "features.pack_cache_disk_hits"
let c_disk_misses = Telemetry.counter Telemetry.global "features.pack_cache_disk_misses"
let c_disk_writes = Telemetry.counter Telemetry.global "features.pack_cache_disk_writes"
let c_disk_errors = Telemetry.counter Telemetry.global "features.pack_cache_disk_errors"

(* Process-local mirrors of the disk counters: telemetry instruments are
   no-ops while the global registry is disabled, but cache behaviour must
   stay observable (CLI [cache], the serve tests) regardless. *)
let a_disk_hits = Atomic.make 0
let a_disk_misses = Atomic.make 0
let a_disk_writes = Atomic.make 0
let a_disk_errors = Atomic.make 0

let bump atomic counter =
  Atomic.incr atomic;
  Telemetry.Counter.incr counter

let disk_counters () =
  [ ("disk_hits", Atomic.get a_disk_hits);
    ("disk_misses", Atomic.get a_disk_misses);
    ("disk_writes", Atomic.get a_disk_writes);
    ("disk_errors", Atomic.get a_disk_errors) ]

let env_cache_dir () =
  match Sys.getenv_opt "FELIX_PACK_CACHE" with
  | Some d when String.trim d <> "" -> Some (String.trim d)
  | Some _ | None -> None

let disk_dir_ref : string option Atomic.t = Atomic.make (env_cache_dir ())

let set_disk_cache d = Atomic.set disk_dir_ref d
let disk_cache () = Atomic.get disk_dir_ref

let effective_dir cache_dir =
  match cache_dir with Some _ -> cache_dir | None -> Atomic.get disk_dir_ref

let sched_fingerprint (sched : Schedule.t) =
  let buf = Buffer.create 128 in
  Buffer.add_string buf sched.Schedule.sched_name;
  List.iter
    (fun (v : Schedule.var) ->
      Printf.bprintf buf "|%s:%016Lx:%016Lx" v.Schedule.v_name
        (Int64.bits_of_float v.Schedule.lo) (Int64.bits_of_float v.Schedule.hi))
    sched.Schedule.vars;
  List.iter
    (fun (extent, vars) ->
      Printf.bprintf buf "|d%d=" extent;
      List.iter (fun v -> Printf.bprintf buf "%s," v) vars)
    sched.Schedule.div_groups;
  Printf.bprintf buf "|c%d" (List.length sched.Schedule.constraints);
  Buffer.contents buf

let disk_key ~width ~optimize sg sched =
  Digest.to_hex
    (Digest.string
       (String.concat "\n"
          [ string_of_int pack_schema_version;
            Compute.workload_key sg;
            sched_fingerprint sched;
            Printf.sprintf "%016Lx" (Int64.bits_of_float width);
            string_of_bool optimize ]))

let entry_path dir key = Filename.concat dir ("pack-" ^ key ^ ".json")

let rec mkdir_p d =
  if d <> "" && not (Sys.file_exists d) then begin
    let parent = Filename.dirname d in
    if parent <> d then mkdir_p parent;
    try Sys.mkdir d 0o755 with Sys_error _ -> ()
  end

let payload_of_pack t =
  Json.Obj
    [ ("n_vars", Json.Num (float_of_int (Array.length t.names)));
      ("n_penalties", Json.Num (float_of_int t.n_penalties));
      ("feature_tape", Autodiff.Tape.to_json t.feature_tape);
      ("penalty_tape", Autodiff.Tape.to_json t.penalty_tape);
      ("feature_plan", Autodiff.Tape.Plan.to_json t.feature_plan);
      ("penalty_plan", Autodiff.Tape.Plan.to_json t.penalty_plan) ]

(* [None] on any structural mismatch — including a payload whose input
   arity disagrees with the schedule in hand, which would mean a key
   collision or foreign file. *)
let pack_of_payload sched sk payload =
  let ( let* ) = Option.bind in
  let* n_vars = Option.bind (Json.find payload "n_vars") Json.as_int in
  let* n_penalties = Option.bind (Json.find payload "n_penalties") Json.as_int in
  let* feature_tape =
    Option.bind (Json.find payload "feature_tape") Autodiff.Tape.of_json
  in
  let* penalty_tape =
    Option.bind (Json.find payload "penalty_tape") Autodiff.Tape.of_json
  in
  (* Plans ride the cache so a warm hit skips the plan compiler too; each
     plan must agree with its tape's arity or the whole entry is rejected. *)
  let* feature_plan =
    Option.bind (Json.find payload "feature_plan") Autodiff.Tape.Plan.of_json
  in
  let* penalty_plan =
    Option.bind (Json.find payload "penalty_plan") Autodiff.Tape.Plan.of_json
  in
  let plan_matches plan tape =
    Autodiff.Tape.Plan.num_inputs plan = Autodiff.Tape.num_inputs tape
    && Autodiff.Tape.Plan.num_outputs plan = Autodiff.Tape.num_outputs tape
  in
  let n = Array.length sk.sk_names in
  if
    n_vars = n
    && Autodiff.Tape.num_inputs feature_tape = n
    && Autodiff.Tape.num_inputs penalty_tape = n
    && n_penalties >= 0
    && Autodiff.Tape.num_outputs penalty_tape = n_penalties
    && plan_matches feature_plan feature_tape
    && plan_matches penalty_plan penalty_tape
  then
    Some
      { sched; prog = sk.sk_prog; names = sk.sk_names; bounds = sk.sk_bounds;
        feature_tape; penalty_tape; feature_plan; penalty_plan; n_penalties;
        div_groups = sk.sk_div_groups; raw_constraints = sched.Schedule.constraints }
  else None

let h_prepare_ms = Telemetry.histogram Telemetry.global "felix.prepare_ms"

let prepare ?(width = 1.0) ?(optimize = true) ?cache_dir sg sched =
  Telemetry.with_span Telemetry.global "pack.prepare"
    ~attrs:
      [ ("subgraph", Telemetry.Str sg.Compute.sg_name);
        ("sketch", Telemetry.Str sched.Schedule.sched_name) ]
  @@ fun () ->
  let t0 = Telemetry.now_s Telemetry.global in
  let sk = skeleton sg sched in
  let result =
    match effective_dir cache_dir with
    | None -> compile_pack ~width ~optimize sg sched sk
    | Some dir ->
      let path = entry_path dir (disk_key ~width ~optimize sg sched) in
      let compile_and_store () =
        let t = compile_pack ~width ~optimize sg sched sk in
        mkdir_p dir;
        (match
           Store.Artifact.save ~path ~kind:pack_artifact_kind
             ~version:pack_schema_version (payload_of_pack t)
         with
        | Ok () -> bump a_disk_writes c_disk_writes
        | Error _ -> bump a_disk_errors c_disk_errors);
        t
      in
      (match
         Store.Artifact.load ~path ~kind:pack_artifact_kind
           ~version:pack_schema_version
       with
      | Ok payload -> (
        match pack_of_payload sched sk payload with
        | Some t ->
          bump a_disk_hits c_disk_hits;
          t
        | None ->
          bump a_disk_errors c_disk_errors;
          compile_and_store ())
      | Error (Store.Not_found _) ->
        bump a_disk_misses c_disk_misses;
        compile_and_store ()
      | Error _ ->
        bump a_disk_errors c_disk_errors;
        compile_and_store ())
  in
  Telemetry.Histogram.observe h_prepare_ms
    ((Telemetry.now_s Telemetry.global -. t0) *. 1000.0);
  result

(* Stable identity of a compiled pack's observable content: the serialized
   tapes plus everything the skeleton contributes. Two packs with equal
   digests evaluate bitwise-identically everywhere; the bench and the
   property tests use this to prove cold / parallel / disk-warm packs
   equal. *)
let digest t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Json.to_line (payload_of_pack t));
  Buffer.add_char buf '\n';
  Buffer.add_string buf t.sched.Schedule.sched_name;
  Array.iter (fun n -> Printf.bprintf buf "|%s" n) t.names;
  Array.iter
    (fun (lo, hi) ->
      Printf.bprintf buf "|%016Lx:%016Lx" (Int64.bits_of_float lo)
        (Int64.bits_of_float hi))
    t.bounds;
  List.iter
    (fun (extent, idxs) ->
      Printf.bprintf buf "|d%d=" extent;
      List.iter (fun i -> Printf.bprintf buf "%d," i) idxs)
    t.div_groups;
  Printf.bprintf buf "|c%d" (List.length t.raw_constraints);
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* --- disk-cache maintenance (CLI [cache] subcommand) ----------------------- *)

let is_entry name =
  String.length name > 10
  && String.sub name 0 5 = "pack-"
  && Filename.check_suffix name ".json"

let disk_cache_entries dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Array.to_list (Sys.readdir dir)
    |> List.filter is_entry
    |> List.map (fun f -> Filename.concat dir f)
  else []

let disk_cache_stats dir =
  let entries = disk_cache_entries dir in
  let bytes =
    List.fold_left
      (fun acc path ->
        match open_in_bin path with
        | ic ->
          let n = in_channel_length ic in
          close_in_noerr ic;
          acc + n
        | exception Sys_error _ -> acc)
      0 entries
  in
  [ ("entries", List.length entries); ("bytes", bytes) ]

let clear_disk_cache dir =
  List.fold_left
    (fun acc path ->
      match Sys.remove path with () -> acc + 1 | exception Sys_error _ -> acc)
    0 (disk_cache_entries dir)

(* --- in-memory (LRU) cache -------------------------------------------------- *)

let c_pack_hits = Telemetry.counter Telemetry.global "features.pack_cache_hits"
let c_pack_misses = Telemetry.counter Telemetry.global "features.pack_cache_misses"

(* Compiled packs are immutable (tapes allocate fresh scratch per eval), so
   a process-wide cache is safe to share across tuning runs and domains. *)
let pack_cache : (string, t) Runtime.Lru.t = Runtime.Lru.create ~capacity:256 ()

let g_pack_entries = Telemetry.gauge Telemetry.global "features.pack_cache_entries"
let g_pack_evictions = Telemetry.gauge Telemetry.global "features.pack_cache_evictions"

let cache_stats () =
  [ ("hits", Runtime.Lru.hits pack_cache);
    ("misses", Runtime.Lru.misses pack_cache);
    ("evictions", Runtime.Lru.evictions pack_cache);
    ("entries", Runtime.Lru.length pack_cache) ]

let clear_memory_cache () = Runtime.Lru.clear pack_cache

let prepare_cached ?(width = 1.0) ?(optimize = true) ?cache_dir sg sched =
  (* The key carries every parameter that changes the compiled result —
     including [optimize], which [prepare] has always taken but the LRU
     key used to omit, silently conflating optimised and raw tapes. *)
  let key =
    Printf.sprintf "%s|%s|%016Lx|%b" (Compute.workload_key sg)
      sched.Schedule.sched_name (Int64.bits_of_float width) optimize
  in
  match Runtime.Lru.find_opt pack_cache key with
  | Some t ->
    Telemetry.Counter.incr c_pack_hits;
    t
  | None ->
    Telemetry.Counter.incr c_pack_misses;
    let t = prepare ~width ~optimize ?cache_dir sg sched in
    Runtime.Lru.add pack_cache key t;
    Telemetry.Gauge.set g_pack_entries (float_of_int (Runtime.Lru.length pack_cache));
    Telemetry.Gauge.set g_pack_evictions
      (float_of_int (Runtime.Lru.evictions pack_cache));
    t

let prepare_all ?(width = 1.0) ?(optimize = true) ?cache_dir ?runtime pairs =
  let one (sg, sched) = prepare_cached ~width ~optimize ?cache_dir sg sched in
  match runtime with
  | Some rt when List.compare_length_with pairs 1 > 0 -> Runtime.map_list rt one pairs
  | Some _ | None -> List.map one pairs

let c_feature_evals = Telemetry.counter Telemetry.global "features.evals"

let features_at t y =
  Telemetry.Counter.incr c_feature_evals;
  Autodiff.Tape.eval t.feature_tape y

let features_vjp t y adj = Autodiff.Tape.vjp t.feature_tape y adj

let penalty_margins t y = Autodiff.Tape.eval t.penalty_tape y
let penalty_vjp t y adj = Autodiff.Tape.vjp t.penalty_tape y adj

let penalty_adjoint g = 2.0 *. max g 0.0

let penalty_value_grad t y =
  (* One forward + one backward: the adjoint 2·max(g,0) depends on the
     margins, so it is computed from the forward sweep's outputs via
     [vjp_with] instead of a separate [eval]. *)
  let margins, grad =
    Autodiff.Tape.vjp_with t.penalty_tape y (fun margins -> Array.map penalty_adjoint margins)
  in
  let value = Array.fold_left (fun acc g -> acc +. (max g 0.0 ** 2.0)) 0.0 margins in
  (value, grad)

(* --- fused-kernel workspaces ----------------------------------------------

   A workspace owns every buffer the fused objective path needs for this
   pack's two tapes; allocate one per descent (or reuse a pooled one) and
   the whole forward/backward inner loop runs allocation-free. Buffer
   contents never leak between calls: each sweep fully rewrites what it
   reads (see {!Autodiff.Tape.workspace}). *)

type workspace = {
  ws_feat : Autodiff.Tape.workspace;
  ws_pen : Autodiff.Tape.workspace;
  ws_pen_adj : float array;  (* n_penalties *)
}

let workspace t =
  { ws_feat = Autodiff.Tape.workspace t.feature_tape;
    ws_pen = Autodiff.Tape.workspace t.penalty_tape;
    ws_pen_adj = Array.make t.n_penalties 0.0
  }

let features_forward t ws y =
  Telemetry.Counter.incr c_feature_evals;
  Autodiff.Tape.forward_into t.feature_tape ws.ws_feat y

let features_backward t ws adj grad =
  Autodiff.Tape.backward_into t.feature_tape ws.ws_feat adj grad

let penalty_value_grad_into t ws y grad =
  let margins = Autodiff.Tape.forward_into t.penalty_tape ws.ws_pen y in
  let adj = ws.ws_pen_adj in
  (* Same left-to-right accumulation as the fold in [penalty_value_grad],
     written as a plain loop — and with [max g 0.0] spelled out as its
     definition [if g >= 0.0 then g else 0.0] — so no float is boxed. *)
  let value = ref 0.0 in
  for k = 0 to Array.length adj - 1 do
    let g = margins.(k) in
    let m = if g >= 0.0 then g else 0.0 in
    value := !value +. (m ** 2.0);
    adj.(k) <- 2.0 *. m
  done;
  Autodiff.Tape.backward_into t.penalty_tape ws.ws_pen adj grad;
  !value

(* --- batched (structure-of-arrays) workspaces ------------------------------

   One batch workspace runs both tapes over up to its capacity of
   candidates in lockstep (see {!Autodiff.Tape.batch_workspace}); each
   lane is bitwise-identical to the scalar kernels above on that candidate
   alone. All matrices are lane-major: row [l] of a [batch * k] array is
   candidate [l]'s vector. *)

(* A batch workspace is bound to an execution strategy at creation: the
   interpreted tape sweeps, or the compiled superop plans (the default —
   see [plan_execution] above). Both strategies are bitwise-identical lane
   for lane, so callers never observe which one a workspace carries. *)
type batch_impl =
  | Interp of Autodiff.Tape.batch_workspace * Autodiff.Tape.batch_workspace
  | Planned of Autodiff.Tape.plan_batch_workspace * Autodiff.Tape.plan_batch_workspace

type batch_workspace = {
  bws_cap : int;
  bws_impl : batch_impl;  (* (feature, penalty) buffers *)
  bws_pen_adj : float array;  (* cap * n_penalties, lane-major *)
}

let batch_workspace t ~batch =
  if batch < 1 then invalid_arg "Pack.batch_workspace: batch must be >= 1";
  let impl =
    if !plan_execution then
      Planned
        ( Autodiff.Tape.plan_batch_workspace t.feature_plan ~batch,
          Autodiff.Tape.plan_batch_workspace t.penalty_plan ~batch )
    else
      Interp
        ( Autodiff.Tape.batch_workspace t.feature_tape ~batch,
          Autodiff.Tape.batch_workspace t.penalty_tape ~batch )
  in
  { bws_cap = batch; bws_impl = impl;
    bws_pen_adj = Array.make (max 1 (batch * t.n_penalties)) 0.0
  }

let batch_capacity bws = bws.bws_cap

let batch_workspace_planned bws =
  match bws.bws_impl with Planned _ -> true | Interp _ -> false

let features_forward_batch t bws ~batch ys =
  Telemetry.Counter.incr ~by:batch c_feature_evals;
  match bws.bws_impl with
  | Interp (feat, _) -> Autodiff.Tape.forward_batch_into t.feature_tape feat ~batch ys
  | Planned (feat, _) ->
    Autodiff.Tape.plan_forward_batch_into t.feature_plan feat ~batch ys

let features_backward_batch t bws ~batch adj grads =
  match bws.bws_impl with
  | Interp (feat, _) ->
    Autodiff.Tape.backward_batch_into t.feature_tape feat ~batch adj grads
  | Planned (feat, _) ->
    Autodiff.Tape.plan_backward_batch_into t.feature_plan feat ~batch adj grads

let penalty_value_grad_batch_into t bws ~batch ys ~grads ~values =
  if batch < 1 || batch > bws.bws_cap then
    invalid_arg "Pack.penalty_value_grad_batch_into: batch exceeds capacity";
  if Array.length values < batch then
    invalid_arg "Pack.penalty_value_grad_batch_into: values arity mismatch";
  let np = t.n_penalties in
  let margins =
    match bws.bws_impl with
    | Interp (_, pen) -> Autodiff.Tape.forward_batch_into t.penalty_tape pen ~batch ys
    | Planned (_, pen) ->
      Autodiff.Tape.plan_forward_batch_into t.penalty_plan pen ~batch ys
  in
  let adj = bws.bws_pen_adj in
  (* Per lane, the exact loop of [penalty_value_grad_into]: left-to-right
     accumulation with [max g 0.0] spelled as its branch so no float is
     boxed. *)
  for l = 0 to batch - 1 do
    let base = l * np in
    let value = ref 0.0 in
    for k = 0 to np - 1 do
      let g = Array.unsafe_get margins (base + k) in
      let m = if g >= 0.0 then g else 0.0 in
      value := !value +. (m ** 2.0);
      Array.unsafe_set adj (base + k) (2.0 *. m)
    done;
    values.(l) <- !value
  done;
  match bws.bws_impl with
  | Interp (_, pen) ->
    Autodiff.Tape.backward_batch_into t.penalty_tape pen ~batch adj grads
  | Planned (_, pen) ->
    Autodiff.Tape.plan_backward_batch_into t.penalty_plan pen ~batch adj grads

let round_to_valid t y =
  let n = Array.length t.names in
  if Array.length y <> n then invalid_arg "Pack.round_to_valid: arity mismatch";
  let rounded = Array.make n nan in
  (* Divisor groups: round sequentially, consuming the extent. Variables
     later in the group get divisors of what remains, so the product always
     divides the extent. *)
  List.iter
    (fun (extent, idxs) ->
      let remaining = ref extent in
      List.iter
        (fun i ->
          let x = exp y.(i) in
          let d = Factorize.nearest_divisor !remaining x in
          rounded.(i) <- log (float_of_int d);
          remaining := !remaining / d)
        idxs)
    t.div_groups;
  (* Free variables: nearest integer, clamped to the box. *)
  Array.iteri
    (fun i v ->
      if Float.is_nan v then begin
        let lo, hi = t.bounds.(i) in
        let x = Float.round (exp (Stats.clamp ~lo ~hi y.(i))) in
        rounded.(i) <- log (max 1.0 x)
      end)
    rounded;
  (* Validate the original (unsmoothed) constraints at the integer point. *)
  let env =
    let tbl = Hashtbl.create n in
    Array.iteri (fun i name -> Hashtbl.replace tbl name (Float.round (exp rounded.(i)))) t.names;
    fun v ->
      match Hashtbl.find_opt tbl v with
      | Some x -> x
      | None -> raise (Eval.Unbound_variable v)
  in
  let feasible =
    List.for_all (fun c -> Eval.eval_cond env c) t.raw_constraints
  in
  if feasible then Some rounded else None

let assignment t y =
  Array.to_list (Array.mapi (fun i name -> (name, int_of_float (Float.round (exp y.(i))))) t.names)

let env_of t y =
  let tbl = Hashtbl.create (Array.length t.names) in
  Array.iteri (fun i name -> Hashtbl.replace tbl name (Float.round (exp y.(i)))) t.names;
  fun v ->
    match Hashtbl.find_opt tbl v with Some x -> x | None -> raise (Eval.Unbound_variable v)

let schedule_key t y =
  (* Single-buffer construction of "<sketch>:v0,v1,..." — called once per
     candidate per dedup in both search engines, so it skips [assignment]'s
     intermediate pair list and [String.concat]'s second pass. *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.sched.Schedule.sched_name;
  Buffer.add_char buf ':';
  Array.iteri
    (fun i _ ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (int_of_float (Float.round (exp y.(i))))))
    t.names;
  Buffer.contents buf
