type t = {
  sched : Schedule.t;
  prog : Loop_ir.t;
  names : string array;
  bounds : (float * float) array;  (* log-space box *)
  feature_tape : Autodiff.Tape.t;
  penalty_tape : Autodiff.Tape.t;
  n_penalties : int;
  div_groups : (int * int list) list;  (* extent, var indices *)
  raw_constraints : Expr.cond list;
}

let schedule t = t.sched
let program t = t.prog
let var_names t = t.names
let num_vars t = Array.length t.names
let bounds_log t = t.bounds
let num_penalties t = t.n_penalties

(* x = e^y: replace every schedule variable by exp of itself; tape inputs
   are then interpreted as log-space values. *)
let exp_subst vars e =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v ()) vars;
  Expr.subst (fun v -> if Hashtbl.mem tbl v then Some (Expr.exp_ (Expr.var v)) else None) e

(* Constraint conditions to margin expressions g with "holds iff g <= 0".
   Both sides of every sketch constraint are positive (sizes, products,
   byte counts), so [a <= b] is rewritten as [log(1+a) - log(1+b) <= 0]:
   the margin of a violated shared-memory constraint is then of the same
   order as that of a violated thread bound, keeping the penalty gradients
   of Equation 4 well-conditioned. *)
let rec margins_of_cond (c : Expr.cond) : Expr.t list =
  let l1p e = Expr.log_ (Expr.add Expr.one e) in
  match c with
  | Cmp (Le, a, b) | Cmp (Lt, a, b) -> [ Expr.sub (l1p a) (l1p b) ]
  | Cmp (Ge, a, b) | Cmp (Gt, a, b) -> [ Expr.sub (l1p b) (l1p a) ]
  | Cmp (Eq, a, b) -> [ Expr.abs_ (Expr.sub (l1p a) (l1p b)) ]
  | Cmp (Ne, _, _) -> []
  | And (c1, c2) -> margins_of_cond c1 @ margins_of_cond c2
  | Or (c1, c2) -> (
    (* or: at least one margin <= 0, i.e. min of margins <= 0 *)
    match (margins_of_cond c1, margins_of_cond c2) with
    | [ m1 ], [ m2 ] -> [ Expr.min_ m1 m2 ]
    | _ -> [])
  | Not _ | Bconst _ -> []

let c_slots_pre = Telemetry.counter Telemetry.global "features.tape_slots_pre"
let c_slots_post = Telemetry.counter Telemetry.global "features.tape_slots_post"

let prepare ?(width = 1.0) ?(optimize = true) sg sched =
  Telemetry.with_span Telemetry.global "pack.prepare"
    ~attrs:
      [ ("subgraph", Telemetry.Str sg.Compute.sg_name);
        ("sketch", Telemetry.Str sched.Schedule.sched_name) ]
  @@ fun () ->
  Telemetry.Counter.incr (Telemetry.counter Telemetry.global "features.tapes_compiled");
  let prog = Loop_ir.apply sg sched in
  let names = Array.of_list (Schedule.var_names sched) in
  let name_list = Array.to_list names in
  let bounds =
    Array.of_list
      (List.map (fun (v : Schedule.var) -> (log v.lo, log v.hi)) sched.Schedule.vars)
  in
  let transform e =
    e
    |> Smooth.smooth ~width
    |> exp_subst name_list
    |> fun e' -> Expr.log_ (Expr.add Expr.one e')
  in
  (* Tapes are compiled raw, then (unless [optimize:false]) run through the
     bit-exact tape optimiser; the before/after slot counts feed the
     features.tape_slots_{pre,post} telemetry counters. *)
  let optimize_tape tape =
    if not optimize then tape
    else begin
      let tape', report = Autodiff.Tape.optimize_report tape in
      Telemetry.Counter.incr ~by:report.Autodiff.Tape.slots_pre c_slots_pre;
      Telemetry.Counter.incr ~by:report.Autodiff.Tape.slots_post c_slots_post;
      tape'
    end
  in
  let features = Extract.extract prog |> Array.map transform |> Array.to_list in
  let feature_tape =
    optimize_tape (Autodiff.Tape.compile ~optimize:false ~inputs:name_list features)
  in
  let margins =
    List.concat_map margins_of_cond sched.Schedule.constraints
    |> List.map (fun g ->
           let g = exp_subst name_list (Smooth.smooth ~width g) in
           Simplify.simplify g)
  in
  let penalty_tape =
    optimize_tape (Autodiff.Tape.compile ~optimize:false ~inputs:name_list margins)
  in
  let index_of name =
    let rec go i = if names.(i) = name then i else go (i + 1) in
    go 0
  in
  let div_groups =
    List.map
      (fun (extent, vars) -> (extent, List.map index_of vars))
      sched.Schedule.div_groups
  in
  { sched; prog; names; bounds; feature_tape; penalty_tape;
    n_penalties = List.length margins; div_groups;
    raw_constraints = sched.Schedule.constraints }

let c_pack_hits = Telemetry.counter Telemetry.global "features.pack_cache_hits"
let c_pack_misses = Telemetry.counter Telemetry.global "features.pack_cache_misses"

(* Compiled packs are immutable (tapes allocate fresh scratch per eval), so
   a process-wide cache is safe to share across tuning runs and domains. *)
let pack_cache : (string, t) Runtime.Lru.t = Runtime.Lru.create ~capacity:256 ()

let g_pack_entries = Telemetry.gauge Telemetry.global "features.pack_cache_entries"
let g_pack_evictions = Telemetry.gauge Telemetry.global "features.pack_cache_evictions"

let cache_stats () =
  [ ("hits", Runtime.Lru.hits pack_cache);
    ("misses", Runtime.Lru.misses pack_cache);
    ("evictions", Runtime.Lru.evictions pack_cache);
    ("entries", Runtime.Lru.length pack_cache) ]

let prepare_cached ?(width = 1.0) sg sched =
  let key =
    Printf.sprintf "%s|%s|%.6g" (Compute.workload_key sg)
      sched.Schedule.sched_name width
  in
  match Runtime.Lru.find_opt pack_cache key with
  | Some t ->
    Telemetry.Counter.incr c_pack_hits;
    t
  | None ->
    Telemetry.Counter.incr c_pack_misses;
    let t = prepare ~width sg sched in
    Runtime.Lru.add pack_cache key t;
    Telemetry.Gauge.set g_pack_entries (float_of_int (Runtime.Lru.length pack_cache));
    Telemetry.Gauge.set g_pack_evictions
      (float_of_int (Runtime.Lru.evictions pack_cache));
    t

let c_feature_evals = Telemetry.counter Telemetry.global "features.evals"

let features_at t y =
  Telemetry.Counter.incr c_feature_evals;
  Autodiff.Tape.eval t.feature_tape y

let features_vjp t y adj = Autodiff.Tape.vjp t.feature_tape y adj

let penalty_margins t y = Autodiff.Tape.eval t.penalty_tape y
let penalty_vjp t y adj = Autodiff.Tape.vjp t.penalty_tape y adj

let penalty_adjoint g = 2.0 *. max g 0.0

let penalty_value_grad t y =
  (* One forward + one backward: the adjoint 2·max(g,0) depends on the
     margins, so it is computed from the forward sweep's outputs via
     [vjp_with] instead of a separate [eval]. *)
  let margins, grad =
    Autodiff.Tape.vjp_with t.penalty_tape y (fun margins -> Array.map penalty_adjoint margins)
  in
  let value = Array.fold_left (fun acc g -> acc +. (max g 0.0 ** 2.0)) 0.0 margins in
  (value, grad)

(* --- fused-kernel workspaces ----------------------------------------------

   A workspace owns every buffer the fused objective path needs for this
   pack's two tapes; allocate one per descent (or reuse a pooled one) and
   the whole forward/backward inner loop runs allocation-free. Buffer
   contents never leak between calls: each sweep fully rewrites what it
   reads (see {!Autodiff.Tape.workspace}). *)

type workspace = {
  ws_feat : Autodiff.Tape.workspace;
  ws_pen : Autodiff.Tape.workspace;
  ws_pen_adj : float array;  (* n_penalties *)
}

let workspace t =
  { ws_feat = Autodiff.Tape.workspace t.feature_tape;
    ws_pen = Autodiff.Tape.workspace t.penalty_tape;
    ws_pen_adj = Array.make t.n_penalties 0.0
  }

let features_forward t ws y =
  Telemetry.Counter.incr c_feature_evals;
  Autodiff.Tape.forward_into t.feature_tape ws.ws_feat y

let features_backward t ws adj grad =
  Autodiff.Tape.backward_into t.feature_tape ws.ws_feat adj grad

let penalty_value_grad_into t ws y grad =
  let margins = Autodiff.Tape.forward_into t.penalty_tape ws.ws_pen y in
  let adj = ws.ws_pen_adj in
  (* Same left-to-right accumulation as the fold in [penalty_value_grad],
     written as a plain loop — and with [max g 0.0] spelled out as its
     definition [if g >= 0.0 then g else 0.0] — so no float is boxed. *)
  let value = ref 0.0 in
  for k = 0 to Array.length adj - 1 do
    let g = margins.(k) in
    let m = if g >= 0.0 then g else 0.0 in
    value := !value +. (m ** 2.0);
    adj.(k) <- 2.0 *. m
  done;
  Autodiff.Tape.backward_into t.penalty_tape ws.ws_pen adj grad;
  !value

(* --- batched (structure-of-arrays) workspaces ------------------------------

   One batch workspace runs both tapes over up to its capacity of
   candidates in lockstep (see {!Autodiff.Tape.batch_workspace}); each
   lane is bitwise-identical to the scalar kernels above on that candidate
   alone. All matrices are lane-major: row [l] of a [batch * k] array is
   candidate [l]'s vector. *)

type batch_workspace = {
  bws_cap : int;
  bws_feat : Autodiff.Tape.batch_workspace;
  bws_pen : Autodiff.Tape.batch_workspace;
  bws_pen_adj : float array;  (* cap * n_penalties, lane-major *)
}

let batch_workspace t ~batch =
  if batch < 1 then invalid_arg "Pack.batch_workspace: batch must be >= 1";
  { bws_cap = batch;
    bws_feat = Autodiff.Tape.batch_workspace t.feature_tape ~batch;
    bws_pen = Autodiff.Tape.batch_workspace t.penalty_tape ~batch;
    bws_pen_adj = Array.make (max 1 (batch * t.n_penalties)) 0.0
  }

let batch_capacity bws = bws.bws_cap

let features_forward_batch t bws ~batch ys =
  Telemetry.Counter.incr ~by:batch c_feature_evals;
  Autodiff.Tape.forward_batch_into t.feature_tape bws.bws_feat ~batch ys

let features_backward_batch t bws ~batch adj grads =
  Autodiff.Tape.backward_batch_into t.feature_tape bws.bws_feat ~batch adj grads

let penalty_value_grad_batch_into t bws ~batch ys ~grads ~values =
  if batch < 1 || batch > bws.bws_cap then
    invalid_arg "Pack.penalty_value_grad_batch_into: batch exceeds capacity";
  if Array.length values < batch then
    invalid_arg "Pack.penalty_value_grad_batch_into: values arity mismatch";
  let np = t.n_penalties in
  let margins = Autodiff.Tape.forward_batch_into t.penalty_tape bws.bws_pen ~batch ys in
  let adj = bws.bws_pen_adj in
  (* Per lane, the exact loop of [penalty_value_grad_into]: left-to-right
     accumulation with [max g 0.0] spelled as its branch so no float is
     boxed. *)
  for l = 0 to batch - 1 do
    let base = l * np in
    let value = ref 0.0 in
    for k = 0 to np - 1 do
      let g = Array.unsafe_get margins (base + k) in
      let m = if g >= 0.0 then g else 0.0 in
      value := !value +. (m ** 2.0);
      Array.unsafe_set adj (base + k) (2.0 *. m)
    done;
    values.(l) <- !value
  done;
  Autodiff.Tape.backward_batch_into t.penalty_tape bws.bws_pen ~batch adj grads

let round_to_valid t y =
  let n = Array.length t.names in
  if Array.length y <> n then invalid_arg "Pack.round_to_valid: arity mismatch";
  let rounded = Array.make n nan in
  (* Divisor groups: round sequentially, consuming the extent. Variables
     later in the group get divisors of what remains, so the product always
     divides the extent. *)
  List.iter
    (fun (extent, idxs) ->
      let remaining = ref extent in
      List.iter
        (fun i ->
          let x = exp y.(i) in
          let d = Factorize.nearest_divisor !remaining x in
          rounded.(i) <- log (float_of_int d);
          remaining := !remaining / d)
        idxs)
    t.div_groups;
  (* Free variables: nearest integer, clamped to the box. *)
  Array.iteri
    (fun i v ->
      if Float.is_nan v then begin
        let lo, hi = t.bounds.(i) in
        let x = Float.round (exp (Stats.clamp ~lo ~hi y.(i))) in
        rounded.(i) <- log (max 1.0 x)
      end)
    rounded;
  (* Validate the original (unsmoothed) constraints at the integer point. *)
  let env =
    let tbl = Hashtbl.create n in
    Array.iteri (fun i name -> Hashtbl.replace tbl name (Float.round (exp rounded.(i)))) t.names;
    fun v ->
      match Hashtbl.find_opt tbl v with
      | Some x -> x
      | None -> raise (Eval.Unbound_variable v)
  in
  let feasible =
    List.for_all (fun c -> Eval.eval_cond env c) t.raw_constraints
  in
  if feasible then Some rounded else None

let assignment t y =
  Array.to_list (Array.mapi (fun i name -> (name, int_of_float (Float.round (exp y.(i))))) t.names)

let env_of t y =
  let tbl = Hashtbl.create (Array.length t.names) in
  Array.iteri (fun i name -> Hashtbl.replace tbl name (Float.round (exp y.(i)))) t.names;
  fun v ->
    match Hashtbl.find_opt tbl v with Some x -> x | None -> raise (Eval.Unbound_variable v)

let schedule_key t y =
  (* Single-buffer construction of "<sketch>:v0,v1,..." — called once per
     candidate per dedup in both search engines, so it skips [assignment]'s
     intermediate pair list and [String.concat]'s second pass. *)
  let buf = Buffer.create 64 in
  Buffer.add_string buf t.sched.Schedule.sched_name;
  Buffer.add_char buf ':';
  Array.iteri
    (fun i _ ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (string_of_int (int_of_float (Float.round (exp y.(i))))))
    t.names;
  Buffer.contents buf
