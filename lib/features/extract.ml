let buffer_slots = 3

let per_buffer_features =
  [ "touched_per_block"; "footprint_per_block"; "reuse_factor"; "footprint_per_thread";
    "touched_per_thread"; "buffer_bytes"; "lines_per_block"; "contiguous";
    "bytes_per_thread"; "stride_penalty" ]

let feature_names =
  Array.of_list
    ([ (* arithmetic *)
       "float_add"; "float_mul"; "float_div"; "float_special"; "float_cmp"; "int_ops";
       "flops_total"; "flops_per_thread"; "flops_per_block"; "arith_intensity";
       (* parallelism *)
       "grid_size"; "block_threads"; "vthreads"; "total_threads"; "serial_spatial";
       "reduce_iters"; "iters_per_thread"; "unroll_step"; "effective_unroll"; "vector_width";
       "threads_occupancy"; "warp_efficiency" ]
    @ List.concat_map
        (fun slot -> List.map (fun f -> Printf.sprintf "buf%d_%s" slot f) per_buffer_features)
        [ 0; 1; 2 ]
    @ [ (* shared memory *)
        "shared_bytes"; "shared_per_thread"; "uses_shared"; "shared_occupancy";
        "shared_load_iters";
        (* output / stores *)
        "out_elems"; "stores_per_thread"; "out_bytes_per_block"; "write_contiguous";
        "fused_flops_per_elem"; "fused_stages";
        (* structure *)
        "num_kernel_stages"; "num_spatial_axes"; "num_reduce_axes"; "loop_depth";
        "sm_util_small"; "sm_util_large"; "blocks_per_sm"; "threads_util";
        (* secondary stages *)
        "other_flops"; "other_threads"; "other_grid"; "other_touched"; "num_other_stages";
        (* traffic *)
        "traffic_loads"; "traffic_stores"; "traffic_total"; "traffic_per_flop";
        "l2_footprint"; "wave_tail_penalty" ])

let num_features = Array.length feature_names

let () = assert (num_features = 82)

open Expr

let counts_of (c : Compute.op_counts) =
  ( float_of_int c.fadd, float_of_int c.fmul, float_of_int c.fdiv, float_of_int c.fspecial,
    float_of_int c.fcmp, float_of_int c.iops )

let stage_concrete_flops (ss : Loop_ir.scheduled_stage) =
  Compute.stage_flops ss.stage
  +. List.fold_left (fun acc st -> acc +. Compute.stage_flops st) 0.0 ss.fused_elemwise

(* Iteration totals are schedule-independent (tiling reorders work, it does
   not change it), so they fold to constants directly — the paper's
   float_add table entry is the closed form N*M*K. *)
let total_iterations ss =
  const
    (float_of_int (Compute.spatial_iterations ss.Loop_ir.stage)
    *. float_of_int (Compute.reduce_iterations ss.Loop_ir.stage))

let spatial_total ss = const (float_of_int (Compute.spatial_iterations ss.Loop_ir.stage))

let buffer_elems (b : Compute.buffer) = List.fold_left Stdlib.( * ) 1 b.shape

let extract (p : Loop_ir.t) =
  let stages = Array.to_list p.stages in
  let dominant =
    Stats.argmax stage_concrete_flops
      (match stages with [] -> invalid_arg "Extract.extract: empty program" | l -> l)
  in
  let others = List.filter (fun ss -> ss != dominant) stages in
  let ss = dominant in
  let grid = Loop_ir.grid_size ss in
  let bthreads = Loop_ir.block_threads ss in
  let vth = Loop_ir.vthreads ss in
  let serial = Loop_ir.serial_spatial ss in
  let red = Loop_ir.reduce_iterations ss in
  let unroll = Loop_ir.unroll_step ss in
  let vec = Loop_ir.vector_width ss in
  let total_threads = mul grid bthreads in
  let iters_thread = mul serial red in
  let total_iters = total_iterations ss in
  let fa, fm, fd, fs, fc, io = counts_of ss.stage.counts in
  let fused_counts =
    List.fold_left
      (fun (a, m, d, s, c) (st : Compute.stage) ->
        let fa', fm', fd', fs', fc', _ = counts_of st.counts in
        (a +. fa', m +. fm', d +. fd', s +. fs', c +. fc'))
      (0.0, 0.0, 0.0, 0.0, 0.0) ss.fused_elemwise
  in
  let f5 (a, _, _, _, _) = a
  and f5b (_, b, _, _, _) = b
  and f5c (_, _, c, _, _) = c
  and f5d (_, _, _, d, _) = d
  and f5e (_, _, _, _, e) = e in
  let spatial = spatial_total ss in
  let count_feature base fused = add (mul (const base) total_iters) (mul (const fused) spatial) in
  let float_add = count_feature fa (f5 fused_counts) in
  let float_mul = count_feature fm (f5b fused_counts) in
  let float_div = count_feature fd (f5c fused_counts) in
  let float_special = count_feature fs (f5d fused_counts) in
  let float_cmp = count_feature fc (f5e fused_counts) in
  (* Address arithmetic: unrolling amortises index updates (the select that
     Section 3.3 uses as its running example of non-differentiability), and
     vectorisation divides issue count. *)
  let int_ops =
    div
      (mul (mul (const io) total_iters) (select (gt unroll (const 8.0)) (const 2.0) (const 5.0)))
      vec
  in
  let flops_total = sum [ float_add; float_mul; float_div; float_special; float_cmp ] in
  let flops_per_thread = div flops_total (max_ one total_threads) in
  let flops_per_block = div flops_total (max_ one grid) in
  (* Per-buffer features on the top buffers of the dominant stage. *)
  let ranked_reads =
    List.sort
      (fun (a : Compute.access) b ->
        Stdlib.compare (buffer_elems b.buffer) (buffer_elems a.buffer))
      ss.stage.reads
  in
  let buf_feats =
    List.init buffer_slots (fun slot ->
        match List.nth_opt ranked_reads slot with
        | None -> List.map (fun _ -> zero) per_buffer_features
        | Some access ->
          let fp_block = Loop_ir.access_footprint ss Loop_ir.Block_scope access in
          let fp_thread = Loop_ir.access_footprint ss Loop_ir.Thread_scope access in
          let touched_block = Loop_ir.access_touched ss Loop_ir.Block_scope access in
          let touched_thread = Loop_ir.access_touched ss Loop_ir.Thread_scope access in
          let contiguous = if Loop_ir.access_contiguous ss access then one else zero in
          let bytes = const (float_of_int (Stdlib.( * ) (buffer_elems access.buffer) 4)) in
          [ touched_block; fp_block;
            div touched_block (max_ one fp_block);
            fp_thread; touched_thread; bytes;
            div fp_block (const 8.0);
            contiguous;
            mul fp_thread (const 4.0);
            select (eq contiguous one) one (const 8.0) ])
  in
  let shared = Loop_ir.shared_bytes ss in
  let uses_shared = if Loop_ir.uses_shared_cache ss then one else zero in
  let out_elems =
    const (float_of_int (Compute.spatial_iterations ss.stage))
  in
  let out_bytes_block = div (mul out_elems (const 4.0)) (max_ one grid) in
  let fused_flops =
    f5 fused_counts +. f5b fused_counts +. f5c fused_counts +. f5d fused_counts
    +. f5e fused_counts
  in
  let other_flops =
    const (List.fold_left (fun acc o -> acc +. stage_concrete_flops o) 0.0 others)
  in
  let other_threads =
    sum (List.map (fun o -> mul (Loop_ir.grid_size o) (Loop_ir.block_threads o)) others)
  in
  let other_grid = sum (List.map Loop_ir.grid_size others) in
  let other_touched =
    sum
      (List.map
         (fun o ->
           mul (Loop_ir.grid_size o)
             (sum
                (List.map
                   (fun a -> Loop_ir.access_footprint o Loop_ir.Block_scope a)
                   o.Loop_ir.stage.reads)))
         others)
  in
  let loads_block =
    sum (List.map (fun a -> Loop_ir.access_footprint ss Loop_ir.Block_scope a) ss.stage.reads)
  in
  let traffic_loads =
    add (mul grid (mul loads_block (const 4.0))) (mul other_touched (const 4.0))
  in
  let traffic_stores = mul out_elems (const 4.0) in
  let traffic_total = add traffic_loads traffic_stores in
  let num_spatial = const (float_of_int (Compute.num_spatial ss.stage)) in
  let num_reduce = const (float_of_int (Compute.num_reduce ss.stage)) in
  let features =
    [ float_add; float_mul; float_div; float_special; float_cmp; int_ops; flops_total;
      flops_per_thread; flops_per_block;
      div flops_total (max_ one traffic_total);
      grid; bthreads; vth; total_threads; serial; red; iters_thread; unroll;
      min_ unroll iters_thread; vec;
      min_ (div bthreads (const 1024.0)) one;
      select (ge bthreads (const 32.0)) one (div bthreads (const 32.0)) ]
    @ List.concat buf_feats
    @ [ shared; div shared (max_ one bthreads); uses_shared;
        div shared (const 49152.0);
        div shared (mul (const 4.0) (max_ one bthreads));
        out_elems; serial; out_bytes_block;
        (if Loop_ir.access_contiguous ss
              { buffer = ss.stage.write;
                indices =
                  List.mapi (fun i _ -> { Compute.terms = [ { axis = i; coeff = 1 } ]; offset = 0 })
                    ss.stage.write.shape }
         then one
         else zero);
        const fused_flops;
        const (float_of_int (List.length ss.fused_elemwise));
        const (float_of_int (List.length stages));
        num_spatial; num_reduce;
        add num_spatial num_reduce;
        min_ (div grid (const 8.0)) one;
        min_ (div grid (const 64.0)) one;
        div grid (const 64.0);
        min_ (div total_threads (const 100000.0)) one;
        other_flops; other_threads; other_grid; other_touched;
        const (float_of_int (List.length others));
        traffic_loads; traffic_stores; traffic_total;
        div traffic_total (max_ one flops_total);
        mul loads_block (const 4.0);
        select (ge grid (const 64.0)) one (div grid (const 64.0)) ]
  in
  let arr = Array.of_list (List.map Simplify.simplify features) in
  assert (Array.length arr = num_features);
  arr

let extract_named p =
  let feats = extract p in
  Array.mapi (fun i e -> (feature_names.(i), e)) feats
