(** Program feature extraction (paper Section 3.3).

    Walks a symbolic program p^* and produces the fixed-size vector of 82
    named feature formulas, each an {!Expr.t} over the schedule variables.
    The features capture the computation and memory-access characteristics
    the DNN cost model consumes:

    - arithmetic: counts of float add/mul/div/special/compare and integer
      ops, total and per-thread flops, arithmetic intensity;
    - parallelism: grid size, block threads, vthreads, serial iterations,
      unrolling, vectorisation, occupancy proxies;
    - memory: per-buffer touched and unique footprints at block and thread
      scope, reuse factors, contiguity, cache-line estimates (top 3 buffers
      of the dominant stage, zero-padded when fewer);
    - shared memory: cooperative-cache bytes and occupancy;
    - output/store behaviour and fused-stage structure.

    Formulas may contain [select], [min] and [max] (e.g. occupancy caps and
    trivial-loop tests); {!Pack} smooths them before differentiation,
    exactly as the paper's rewriter does. *)

val num_features : int
(** 82, as in the paper. *)

val feature_names : string array
(** Length {!num_features}; stable order. *)

val extract : Loop_ir.t -> Expr.t array
(** Length {!num_features}; entry k is the formula for
    [feature_names.(k)]. *)

val extract_named : Loop_ir.t -> (string * Expr.t) array
